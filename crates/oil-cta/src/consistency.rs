//! The polynomial-time consistency algorithm for CTA models.
//!
//! A composition of CTA components is **consistent** (paper Section V-A) when
//!
//! 1. every port's actual transfer rate is at most its maximum rate
//!    (`r(p) ≤ r̂(p)`), with the actual rates related through the transfer
//!    rate ratios `γ` of the connections, and
//! 2. data arrives in time on every port: the delay constraints
//!    `θ(q) ≥ θ(p) + Δ(c)` admit a solution, which is the case exactly when
//!    no cycle of connections has a positive total delay.
//!
//! Both checks are polynomial: rate propagation is a breadth-first traversal
//! with exact rational coefficients, and the delay check is a Bellman-Ford
//! longest-path computation (`O(P · C)`). The algorithm also returns the
//! maximal achievable transfer rates, which the paper uses for rate-only
//! interfaces of black-box components.

use crate::component::{ConnectionId, CtaModel, PortId};
use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};

/// Relative tolerance for comparing rates expressed in Hz.
const RATE_TOL: f64 = 1e-9;
/// Absolute tolerance (seconds) when evaluating delay cycles.
const DELAY_TOL: f64 = 1e-12;

/// The result of a successful consistency check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyResult {
    /// Actual transfer rate per port, in events per second.
    pub rates: Vec<f64>,
    /// A feasible start-time (offset) per port, in seconds. Offsets satisfy
    /// every connection's delay constraint and are the earliest such times
    /// relative to the chosen time origin.
    pub offsets: Vec<f64>,
    /// Rate-propagation group of each port; ports in the same group have
    /// rates related by the `γ` ratios along connections.
    pub rate_groups: Vec<usize>,
    /// Per connection: slack of the delay constraint at the computed offsets,
    /// `θ(to) − θ(from) − Δ(c) ≥ 0`.
    pub slacks: Vec<f64>,
}

impl ConsistencyResult {
    /// The minimum slack over all connections (how close the composition is
    /// to violating a delay constraint).
    pub fn min_slack(&self) -> f64 {
        self.slacks.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Why a CTA composition is inconsistent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConsistencyError {
    /// Following two different connection paths to the same port implies two
    /// different rates: the `γ` ratios around some cycle do not multiply to 1.
    RateConflict {
        /// The port with conflicting implied rates.
        port: PortId,
    },
    /// Two ports with fixed (source/sink) rates in the same rate group imply
    /// incompatible scales.
    RequiredRateConflict {
        /// The second port whose required rate conflicts with the group.
        port: PortId,
        /// Rate implied by the rest of the group.
        implied: f64,
        /// Rate required at this port.
        required: f64,
    },
    /// The rate required at some port exceeds the maximum rate of another
    /// port in its group.
    MaxRateExceeded {
        /// Port whose maximum rate is exceeded.
        port: PortId,
        /// Rate the composition would need at that port.
        needed: f64,
        /// The port's maximum rate.
        max: f64,
    },
    /// A cycle of connections has positive total delay: data arrives too late
    /// on the cycle's ports at the computed rates.
    PositiveCycle {
        /// Ports on the offending cycle.
        ports: Vec<PortId>,
        /// Total delay of the cycle (seconds); positive.
        excess: f64,
        /// Connections on the cycle.
        connections: Vec<ConnectionId>,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::RateConflict { port } => {
                write!(f, "rate ratios around a cycle through port {port} do not multiply to one")
            }
            ConsistencyError::RequiredRateConflict { port, implied, required } => write!(
                f,
                "port {port} requires rate {required} Hz but the composition implies {implied} Hz"
            ),
            ConsistencyError::MaxRateExceeded { port, needed, max } => {
                write!(f, "port {port} would need rate {needed} Hz, exceeding its maximum {max} Hz")
            }
            ConsistencyError::PositiveCycle { excess, ports, .. } => write!(
                f,
                "a cycle through {} ports has positive delay {excess:.3e} s: data arrives too late",
                ports.len()
            ),
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// Internal: rate groups and per-port rational coefficients.
struct RateStructure {
    /// Group id per port.
    group: Vec<usize>,
    /// Coefficient per port: `rate(port) = scale(group) * coeff(port)`.
    coeff: Vec<Rational>,
    /// Number of groups.
    groups: usize,
}

fn propagate_rate_structure(model: &CtaModel) -> Result<RateStructure, ConsistencyError> {
    let n = model.ports.len();
    let mut group = vec![usize::MAX; n];
    let mut coeff = vec![Rational::ONE; n];
    // Undirected adjacency: (neighbour, factor) with rate(nb) = factor * rate(this).
    let mut adj: Vec<Vec<(PortId, Rational)>> = vec![Vec::new(); n];
    for c in &model.connections {
        if !c.couples_rates {
            continue;
        }
        adj[c.from].push((c.to, c.gamma));
        adj[c.to].push((c.from, c.gamma.recip()));
    }

    let mut groups = 0;
    for start in 0..n {
        if group[start] != usize::MAX {
            continue;
        }
        let gid = groups;
        groups += 1;
        group[start] = gid;
        coeff[start] = Rational::ONE;
        let mut queue = vec![start];
        while let Some(p) = queue.pop() {
            let cp = coeff[p];
            for &(q, factor) in &adj[p] {
                let expected = cp * factor;
                if group[q] == usize::MAX {
                    group[q] = gid;
                    coeff[q] = expected;
                    queue.push(q);
                } else if coeff[q] != expected {
                    return Err(ConsistencyError::RateConflict { port: q });
                }
            }
        }
    }
    Ok(RateStructure { group, coeff, groups })
}

/// Determine the scale of every rate group: fixed by required (source/sink)
/// rates when present, otherwise the maximum allowed by the ports' maximum
/// rates. Returns `(scales, rates)`.
fn resolve_rates(
    model: &CtaModel,
    rs: &RateStructure,
) -> Result<(Vec<f64>, Vec<f64>), ConsistencyError> {
    let mut scale: Vec<Option<f64>> = vec![None; rs.groups];
    // Pass 1: required rates fix the scale.
    for (p, port) in model.ports.iter().enumerate() {
        if let Some(req) = port.required_rate {
            let implied_scale = req / rs.coeff[p].to_f64();
            match scale[rs.group[p]] {
                None => scale[rs.group[p]] = Some(implied_scale),
                Some(s) => {
                    if (s - implied_scale).abs() > RATE_TOL * s.abs().max(1.0) {
                        return Err(ConsistencyError::RequiredRateConflict {
                            port: p,
                            implied: s * rs.coeff[p].to_f64(),
                            required: req,
                        });
                    }
                }
            }
        }
    }
    // Pass 2: groups without a required rate run at the maximum rate allowed
    // by their ports (the "maximal achievable transfer rates" of the paper).
    let mut max_scale: Vec<f64> = vec![f64::INFINITY; rs.groups];
    for (p, port) in model.ports.iter().enumerate() {
        if port.max_rate.is_finite() {
            let bound = port.max_rate / rs.coeff[p].to_f64();
            let g = rs.group[p];
            if bound < max_scale[g] {
                max_scale[g] = bound;
            }
        }
    }
    let mut scales = Vec::with_capacity(rs.groups);
    for g in 0..rs.groups {
        let s = match scale[g] {
            Some(s) => s,
            None => {
                if max_scale[g].is_finite() {
                    max_scale[g]
                } else {
                    // Completely unconstrained group (all max rates infinite):
                    // pick unit scale; delays with phi terms then use rate 1.
                    1.0
                }
            }
        };
        scales.push(s);
    }
    // Pass 3: every port's rate must respect its maximum rate.
    let mut rates = vec![0.0; model.ports.len()];
    for (p, port) in model.ports.iter().enumerate() {
        let r = scales[rs.group[p]] * rs.coeff[p].to_f64();
        if port.max_rate.is_finite() && r > port.max_rate * (1.0 + RATE_TOL) {
            return Err(ConsistencyError::MaxRateExceeded { port: p, needed: r, max: port.max_rate });
        }
        rates[p] = r;
    }
    Ok((scales, rates))
}

/// Check the delay constraints at the given rates: no cycle of connections
/// may have positive total delay. Returns feasible offsets on success or a
/// witness cycle on failure. Longest-path Bellman-Ford, `O(P · C)`.
pub fn check_delays_at_rates(
    model: &CtaModel,
    rates: &[f64],
) -> Result<(Vec<f64>, Vec<f64>), ConsistencyError> {
    let n = model.ports.len();
    let mut offsets = vec![0.0f64; n];
    let mut pred: Vec<Option<(PortId, ConnectionId)>> = vec![None; n];
    let weight = |cid: usize| -> f64 {
        let c = &model.connections[cid];
        c.delay_at_rate(rates[c.from].max(f64::MIN_POSITIVE))
    };

    let mut updated: Option<PortId> = None;
    for _ in 0..n.max(1) {
        updated = None;
        for (cid, c) in model.connections.iter().enumerate() {
            let w = weight(cid);
            if offsets[c.from] + w > offsets[c.to] + DELAY_TOL {
                offsets[c.to] = offsets[c.from] + w;
                pred[c.to] = Some((c.from, cid));
                updated = Some(c.to);
            }
        }
        if updated.is_none() {
            break;
        }
    }

    if let Some(start) = updated {
        // A positive cycle exists; walk predecessors to extract it.
        let mut v = start;
        for _ in 0..n {
            v = pred[v].map(|(p, _)| p).unwrap_or(v);
        }
        let mut ports = vec![v];
        let mut connections = Vec::new();
        let mut excess = 0.0;
        let mut cur = v;
        loop {
            let (p, cid) = pred[cur].expect("cycle nodes have predecessors");
            connections.push(cid);
            excess += weight(cid);
            cur = p;
            if cur == v {
                break;
            }
            ports.push(cur);
        }
        ports.reverse();
        connections.reverse();
        return Err(ConsistencyError::PositiveCycle { ports, excess, connections });
    }

    let slacks = model
        .connections
        .iter()
        .enumerate()
        .map(|(cid, c)| offsets[c.to] - offsets[c.from] - weight(cid))
        .collect();
    Ok((offsets, slacks))
}

impl CtaModel {
    /// Run the full consistency check: rate propagation, maximum-rate checks
    /// and delay feasibility. Polynomial time in the size of the model.
    pub fn check_consistency(&self) -> Result<ConsistencyResult, ConsistencyError> {
        let rs = propagate_rate_structure(self)?;
        let (_scales, rates) = resolve_rates(self, &rs)?;
        let (offsets, slacks) = check_delays_at_rates(self, &rates)?;
        Ok(ConsistencyResult { rates, offsets, rate_groups: rs.group, slacks })
    }

    /// The maximal achievable transfer rates: for rate groups without a
    /// source/sink-imposed rate, search for the largest uniform scale (as a
    /// fraction of the rate-only maximum) at which the delay constraints are
    /// still satisfiable. Groups containing a required rate keep it.
    ///
    /// Returns the per-port rates, or the error that makes even arbitrarily
    /// low rates infeasible.
    pub fn maximal_rates(&self, tolerance: f64) -> Result<Vec<f64>, ConsistencyError> {
        let rs = propagate_rate_structure(self)?;
        let (_scales, base_rates) = resolve_rates(self, &rs)?;
        // Which groups are free to scale down?
        let mut fixed = vec![false; rs.groups];
        for (p, port) in self.ports.iter().enumerate() {
            if port.required_rate.is_some() {
                fixed[rs.group[p]] = true;
            }
        }
        let rates_at = |f: f64| -> Vec<f64> {
            base_rates
                .iter()
                .enumerate()
                .map(|(p, &r)| if fixed[rs.group[p]] { r } else { r * f })
                .collect()
        };
        if check_delays_at_rates(self, &rates_at(1.0)).is_ok() {
            return Ok(rates_at(1.0));
        }
        // The maximum is infeasible; binary search the largest feasible
        // fraction, verifying a tiny rate is feasible at all first.
        let mut lo = 1e-9;
        if let Err(e) = check_delays_at_rates(self, &rates_at(lo)) {
            return Err(e);
        }
        let mut hi = 1.0;
        while hi - lo > tolerance {
            let mid = 0.5 * (lo + hi);
            if check_delays_at_rates(self, &rates_at(mid)).is_ok() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(rates_at(lo))
    }

    /// Like [`Self::check_consistency`], but instead of failing when the
    /// maximal rates violate a delay constraint, scale the rate groups that
    /// are not pinned by a source or sink down to their maximal *feasible*
    /// rates (the paper's "maximal achievable transfer rates"). Fails only
    /// when no positive rate satisfies the constraints, e.g. an unattainable
    /// latency bound.
    pub fn consistency_at_maximal_rates(
        &self,
        tolerance: f64,
    ) -> Result<ConsistencyResult, ConsistencyError> {
        let rs = propagate_rate_structure(self)?;
        let rates = self.maximal_rates(tolerance)?;
        let (offsets, slacks) = check_delays_at_rates(self, &rates)?;
        Ok(ConsistencyResult { rates, offsets, rate_groups: rs.group, slacks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::CtaModel;

    /// Producer -> consumer with a buffer back-edge of capacity `cap`.
    fn producer_consumer(prod_rate: f64, cons_rate: f64, response: f64, cap: f64) -> CtaModel {
        let mut m = CtaModel::new();
        let prod = m.add_component("prod", None);
        let cons = m.add_component("cons", None);
        let p = m.add_port(prod, "out", prod_rate);
        let q = m.add_port(cons, "in", cons_rate);
        m.connect(p, q, response, 0.0, Rational::ONE);
        m.connect_buffer("b", q, p, response, -cap, Rational::ONE);
        m
    }

    #[test]
    fn simple_pair_is_consistent() {
        let m = producer_consumer(1000.0, 1500.0, 1e-4, 4.0);
        let r = m.check_consistency().unwrap();
        // Both ports in one rate group, running at the slower max rate.
        assert_eq!(r.rate_groups[0], r.rate_groups[1]);
        assert!((r.rates[0] - 1000.0).abs() < 1e-6);
        assert!((r.rates[1] - 1000.0).abs() < 1e-6);
        assert!(r.min_slack() >= -1e-12);
    }

    #[test]
    fn too_small_buffer_gives_positive_cycle() {
        // Round trip delay 2 * 1e-4 s; at 1000 Hz the buffer delay is
        // -cap/1000. cap = 0.1 would give cycle weight 2e-4 - 1e-4 > 0.
        let m = producer_consumer(1000.0, 1000.0, 1e-4, 0.1);
        match m.check_consistency() {
            Err(ConsistencyError::PositiveCycle { excess, connections, .. }) => {
                assert!(excess > 0.0);
                assert_eq!(connections.len(), 2);
            }
            other => panic!("expected positive cycle, got {other:?}"),
        }
    }

    #[test]
    fn buffer_of_exactly_round_trip_is_feasible() {
        // cycle: eps 2e-4, phi -cap at rate 1000 -> need cap >= 0.2... with
        // cap = 0.2 the cycle weight is exactly zero.
        let m = producer_consumer(1000.0, 1000.0, 1e-4, 0.2);
        assert!(m.check_consistency().is_ok());
    }

    #[test]
    fn required_rate_fixes_group_rate() {
        let mut m = producer_consumer(10_000.0, 10_000.0, 1e-5, 4.0);
        // Add a source port wired to the producer that fixes 2 kHz.
        let src = m.add_component("src", None);
        let s = m.add_required_rate_port(src, "out", 2000.0);
        m.connect(s, 0, 0.0, 0.0, Rational::ONE);
        let r = m.check_consistency().unwrap();
        assert!((r.rates[0] - 2000.0).abs() < 1e-6);
        assert!((r.rates[1] - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn conflicting_required_rates_detected() {
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_required_rate_port(a, "p", 1000.0);
        let q = m.add_required_rate_port(a, "q", 1500.0);
        m.connect(p, q, 0.0, 0.0, Rational::ONE);
        assert!(matches!(
            m.check_consistency(),
            Err(ConsistencyError::RequiredRateConflict { .. })
        ));
    }

    #[test]
    fn required_rate_exceeding_max_rate_detected() {
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_required_rate_port(a, "p", 1000.0);
        let q = m.add_port(a, "q", 400.0);
        m.connect(p, q, 0.0, 0.0, Rational::ONE);
        assert!(matches!(m.check_consistency(), Err(ConsistencyError::MaxRateExceeded { .. })));
    }

    #[test]
    fn gamma_cycle_product_must_be_one() {
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_port(a, "p", 1000.0);
        let q = m.add_port(a, "q", 1000.0);
        m.connect(p, q, 0.0, 0.0, Rational::new(2, 1));
        m.connect(q, p, 0.0, 0.0, Rational::new(1, 1));
        assert!(matches!(m.check_consistency(), Err(ConsistencyError::RateConflict { .. })));
    }

    #[test]
    fn multi_rate_gamma_propagates_rates() {
        // Splitter: input at 6.4 MHz, video output gamma 10/16, audio output
        // gamma 1/25.
        let mut m = CtaModel::new();
        let w = m.add_component("splitter", None);
        let rf = m.add_required_rate_port(w, "rf", 6.4e6);
        let vid = m.add_port(w, "vid", f64::INFINITY);
        let aud = m.add_port(w, "aud", f64::INFINITY);
        m.connect(rf, vid, 0.0, 0.0, Rational::new(10, 16));
        m.connect(rf, aud, 0.0, 0.0, Rational::new(1, 25));
        let r = m.check_consistency().unwrap();
        assert!((r.rates[vid] - 4e6).abs() < 1.0);
        assert!((r.rates[aud] - 256e3).abs() < 1.0);
    }

    #[test]
    fn fig8c_rate_dependent_delay_values() {
        // The connection (p0, p2) of Fig. 8 has phi = psi - psi/pi = 4 - 4/2 = 2
        // and gamma = 2/4. At rate r the delay is rho_g + 2/r.
        let rho = 1e-6;
        let psi = 4.0;
        let pi = 2.0;
        let phi = psi - psi / pi;
        let mut m = CtaModel::new();
        let w = m.add_component("wg", None);
        let p0 = m.add_port(w, "p0", 1e6);
        let p2 = m.add_port(w, "p2", 1e6);
        let c = m.connect(p0, p2, rho, phi, Rational::new(2, 4));
        assert!((m.connections[c].delay_at_rate(1e6) - (rho + 2e-6)).abs() < 1e-15);
        let r = m.check_consistency().unwrap();
        assert!((r.rates[p2] / r.rates[p0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn offsets_respect_connection_delays() {
        let m = producer_consumer(1000.0, 1000.0, 2e-4, 1.0);
        let r = m.check_consistency().unwrap();
        for (cid, c) in m.connections.iter().enumerate() {
            let d = c.delay_at_rate(r.rates[c.from]);
            assert!(
                r.offsets[c.to] + 1e-12 >= r.offsets[c.from] + d,
                "connection {cid} violated"
            );
        }
    }

    #[test]
    fn maximal_rates_scale_down_until_feasible() {
        // Buffer too small for the max rate but fine at a lower rate:
        // cycle eps 2e-4 s, capacity 1 token -> feasible iff rate <= 5000 Hz.
        let m = producer_consumer(20_000.0, 20_000.0, 1e-4, 1.0);
        assert!(m.check_consistency().is_err());
        let rates = m.maximal_rates(1e-6).unwrap();
        assert!(rates[0] <= 5000.0 * 1.01, "{}", rates[0]);
        assert!(rates[0] >= 5000.0 * 0.9, "{}", rates[0]);
    }

    #[test]
    fn maximal_rates_keep_required_rates_fixed() {
        let mut m = producer_consumer(10_000.0, 10_000.0, 1e-5, 8.0);
        let src = m.add_component("src", None);
        let s = m.add_required_rate_port(src, "out", 1000.0);
        m.connect(s, 0, 0.0, 0.0, Rational::ONE);
        let rates = m.maximal_rates(1e-6).unwrap();
        assert!((rates[0] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn latency_style_negative_epsilon_cycle() {
        // src -> snk forward delay 3 ms, latency constraint 5 ms modelled as
        // a -5 ms back connection: consistent. With a 2 ms constraint:
        // inconsistent.
        let build = |bound_ms: f64| {
            let mut m = CtaModel::new();
            let src = m.add_component("src", None);
            let snk = m.add_component("snk", None);
            let s = m.add_required_rate_port(src, "out", 1000.0);
            let k = m.add_required_rate_port(snk, "in", 1000.0);
            m.connect(s, k, 3e-3, 0.0, Rational::ONE);
            m.connect(k, s, -bound_ms * 1e-3, 0.0, Rational::ONE);
            m
        };
        assert!(build(5.0).check_consistency().is_ok());
        assert!(matches!(
            build(2.0).check_consistency(),
            Err(ConsistencyError::PositiveCycle { .. })
        ));
    }

    #[test]
    fn empty_model_is_consistent() {
        let m = CtaModel::new();
        let r = m.check_consistency().unwrap();
        assert!(r.rates.is_empty());
        assert!(r.min_slack().is_infinite());
    }
}
