//! The polynomial-time consistency algorithm for CTA models.
//!
//! A composition of CTA components is **consistent** (paper Section V-A) when
//!
//! 1. every port's actual transfer rate is at most its maximum rate
//!    (`r(p) ≤ r̂(p)`), with the actual rates related through the transfer
//!    rate ratios `γ` of the connections, and
//! 2. data arrives in time on every port: the delay constraints
//!    `θ(q) ≥ θ(p) + Δ(c)` admit a solution, which is the case exactly when
//!    no cycle of connections has a positive total delay.
//!
//! Both checks are polynomial: rate propagation is a breadth-first traversal
//! with exact rational coefficients, and the delay check is a Bellman-Ford
//! longest-path computation (`O(P · C)`). The algorithm also returns the
//! maximal achievable transfer rates, which the paper uses for rate-only
//! interfaces of black-box components.
//!
//! Everything here is computed in **exact rational arithmetic**: rates,
//! offsets and slacks are [`Rational`]s, comparisons are exact, and there are
//! no tolerance constants anywhere. In particular, the maximal achievable
//! rates are found *exactly*: when a positive-delay cycle forces the free
//! rate groups below their rate-only maximum, the binding cycle's weight
//! `E + P/f` (constant part `E`, rate-dependent part `P/f` in the scale
//! factor `f`) is solved for the factor that makes it exactly zero, instead
//! of binary-searching to a tolerance.

use crate::component::{ConnectionId, CtaModel};
use oil_dataflow::index::{GroupId, Idx, IndexVec, PortId};
use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};

/// The result of a successful consistency check. All values are exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyResult {
    /// Actual transfer rate per port, in events per second.
    pub rates: IndexVec<PortId, Rational>,
    /// A feasible start-time (offset) per port, in seconds. Offsets satisfy
    /// every connection's delay constraint and are the earliest such times
    /// relative to the chosen time origin.
    pub offsets: IndexVec<PortId, Rational>,
    /// Rate-propagation group of each port; ports in the same group have
    /// rates related by the `γ` ratios along connections.
    pub rate_groups: IndexVec<PortId, GroupId>,
    /// Per connection: slack of the delay constraint at the computed offsets,
    /// `θ(to) − θ(from) − Δ(c) ≥ 0`.
    pub slacks: IndexVec<ConnectionId, Rational>,
}

impl ConsistencyResult {
    /// The minimum slack over all connections (how close the composition is
    /// to violating a delay constraint), or `None` for a model without
    /// connections.
    pub fn min_slack(&self) -> Option<Rational> {
        self.slacks.iter().copied().reduce(Rational::min)
    }

    /// A port's rate in Hz as `f64` — conversion at the API boundary, after
    /// all exact computation has finished.
    pub fn rate_hz(&self, port: PortId) -> f64 {
        self.rates[port].to_f64()
    }

    /// A port's start offset in seconds as `f64` — conversion at the API
    /// boundary, after all exact computation has finished.
    pub fn offset_seconds(&self, port: PortId) -> f64 {
        self.offsets[port].to_f64()
    }
}

/// Why a CTA composition is inconsistent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConsistencyError {
    /// Following two different connection paths to the same port implies two
    /// different rates: the `γ` ratios around some cycle do not multiply to 1.
    RateConflict {
        /// The port with conflicting implied rates.
        port: PortId,
    },
    /// Two ports with fixed (source/sink) rates in the same rate group imply
    /// incompatible scales.
    RequiredRateConflict {
        /// The second port whose required rate conflicts with the group.
        port: PortId,
        /// Rate implied by the rest of the group (events/s).
        implied: Rational,
        /// Rate required at this port (events/s).
        required: Rational,
    },
    /// The rate required at some port exceeds the maximum rate of another
    /// port in its group.
    MaxRateExceeded {
        /// Port whose maximum rate is exceeded.
        port: PortId,
        /// Rate the composition would need at that port (events/s).
        needed: Rational,
        /// The port's maximum rate (events/s).
        max: Rational,
    },
    /// A cycle of connections has positive total delay: data arrives too late
    /// on the cycle's ports at the computed rates.
    PositiveCycle {
        /// Ports on the offending cycle.
        ports: Vec<PortId>,
        /// Total delay of the cycle (seconds); positive.
        excess: Rational,
        /// Connections on the cycle.
        connections: Vec<ConnectionId>,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::RateConflict { port } => {
                write!(
                    f,
                    "rate ratios around a cycle through port {port} do not multiply to one"
                )
            }
            ConsistencyError::RequiredRateConflict {
                port,
                implied,
                required,
            } => write!(
                f,
                "port {port} requires rate {required} Hz but the composition implies {implied} Hz"
            ),
            ConsistencyError::MaxRateExceeded { port, needed, max } => {
                write!(
                    f,
                    "port {port} would need rate {needed} Hz, exceeding its maximum {max} Hz"
                )
            }
            ConsistencyError::PositiveCycle { excess, ports, .. } => write!(
                f,
                "a cycle through {} ports has positive delay {excess} s: data arrives too late",
                ports.len()
            ),
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// Internal: rate groups and per-port rational coefficients.
pub(crate) struct RateStructure {
    /// Group id per port.
    pub(crate) group: IndexVec<PortId, GroupId>,
    /// Coefficient per port: `rate(port) = scale(group) * coeff(port)`.
    pub(crate) coeff: IndexVec<PortId, Rational>,
    /// Number of groups.
    pub(crate) groups: usize,
}

pub(crate) fn propagate_rate_structure(
    model: &CtaModel,
) -> Result<RateStructure, ConsistencyError> {
    let n = model.ports.len();
    let mut group: IndexVec<PortId, Option<GroupId>> = IndexVec::from_elem(None, n);
    let mut coeff: IndexVec<PortId, Rational> = IndexVec::from_elem(Rational::ONE, n);
    // Undirected adjacency: (neighbour, factor) with rate(nb) = factor * rate(this).
    let mut adj: IndexVec<PortId, Vec<(PortId, Rational)>> = IndexVec::from_elem(Vec::new(), n);
    for c in &model.connections {
        if !c.couples_rates {
            continue;
        }
        adj[c.from].push((c.to, c.gamma));
        adj[c.to].push((c.from, c.gamma.recip()));
    }

    let mut groups = 0usize;
    for start in model.ports.indices() {
        if group[start].is_some() {
            continue;
        }
        let gid = GroupId::new(groups);
        groups += 1;
        group[start] = Some(gid);
        coeff[start] = Rational::ONE;
        let mut queue = vec![start];
        while let Some(p) = queue.pop() {
            let cp = coeff[p];
            for &(q, factor) in &adj[p] {
                let expected = cp * factor;
                if group[q].is_none() {
                    group[q] = Some(gid);
                    coeff[q] = expected;
                    queue.push(q);
                } else if coeff[q] != expected {
                    return Err(ConsistencyError::RateConflict { port: q });
                }
            }
        }
    }
    let group = group
        .into_raw()
        .into_iter()
        .map(|g| g.expect("all ports grouped"))
        .collect();
    Ok(RateStructure {
        group,
        coeff,
        groups,
    })
}

/// Determine the scale of every rate group: fixed by required (source/sink)
/// rates when present, otherwise the maximum allowed by the ports' maximum
/// rates. Returns `(scales, rates)`.
fn resolve_rates(
    model: &CtaModel,
    rs: &RateStructure,
) -> Result<(Vec<Rational>, IndexVec<PortId, Rational>), ConsistencyError> {
    let mut scale: Vec<Option<Rational>> = vec![None; rs.groups];
    // Pass 1: required rates fix the scale; conflicts are exact inequalities.
    for (p, port) in model.ports.iter_enumerated() {
        if let Some(req) = port.required_rate {
            let implied_scale = req / rs.coeff[p];
            match scale[rs.group[p].index()] {
                None => scale[rs.group[p].index()] = Some(implied_scale),
                Some(s) => {
                    if s != implied_scale {
                        return Err(ConsistencyError::RequiredRateConflict {
                            port: p,
                            implied: s * rs.coeff[p],
                            required: req,
                        });
                    }
                }
            }
        }
    }
    // Pass 2: groups without a required rate run at the maximum rate allowed
    // by their ports (the "maximal achievable transfer rates" of the paper).
    let mut max_scale: Vec<Option<Rational>> = vec![None; rs.groups];
    for (p, port) in model.ports.iter_enumerated() {
        if let Some(max_rate) = port.max_rate {
            let bound = max_rate / rs.coeff[p];
            let g = rs.group[p].index();
            max_scale[g] = Some(match max_scale[g] {
                None => bound,
                Some(existing) => existing.min(bound),
            });
        }
    }
    let mut scales = Vec::with_capacity(rs.groups);
    for g in 0..rs.groups {
        let s = match scale[g] {
            Some(s) => s,
            // Completely unconstrained group (all max rates unbounded): pick
            // unit scale; delays with phi terms then use rate coeff(p).
            None => max_scale[g].unwrap_or(Rational::ONE),
        };
        scales.push(s);
    }
    // Pass 3: every port's rate must respect its maximum rate — exactly.
    let mut rates: IndexVec<PortId, Rational> = IndexVec::with_capacity(model.ports.len());
    for (p, port) in model.ports.iter_enumerated() {
        let r = scales[rs.group[p].index()] * rs.coeff[p];
        if let Some(max_rate) = port.max_rate {
            if r > max_rate {
                return Err(ConsistencyError::MaxRateExceeded {
                    port: p,
                    needed: r,
                    max: max_rate,
                });
            }
        }
        rates.push(r);
    }
    Ok((scales, rates))
}

/// Offsets per port and slacks per connection, as produced by the delay
/// feasibility check.
pub type DelayCheck = (IndexVec<PortId, Rational>, IndexVec<ConnectionId, Rational>);

/// Check the delay constraints at the given rates: no cycle of connections
/// may have positive total delay. Returns feasible offsets on success or a
/// witness cycle on failure. Longest-path Bellman-Ford, `O(P · C)`, with
/// exact comparisons throughout.
pub fn check_delays_at_rates(
    model: &CtaModel,
    rates: &IndexVec<PortId, Rational>,
) -> Result<DelayCheck, ConsistencyError> {
    check_delays(model, rates, false)
}

/// As [`check_delays_at_rates`], optionally treating buffer connections as
/// unbounded (their capacity term `-δ/r` can absorb any delay, so they can
/// never be part of a binding cycle). Used when computing the rates a model
/// could reach if buffer sizing were free to enlarge every capacity.
pub(crate) fn check_delays(
    model: &CtaModel,
    rates: &IndexVec<PortId, Rational>,
    ignore_buffers: bool,
) -> Result<DelayCheck, ConsistencyError> {
    let n = model.ports.len();
    let mut offsets: IndexVec<PortId, Rational> = IndexVec::from_elem(Rational::ZERO, n);
    let mut pred: IndexVec<PortId, Option<(PortId, ConnectionId)>> = IndexVec::from_elem(None, n);
    let weight = |cid: ConnectionId| -> Rational {
        let c = &model.connections[cid];
        c.delay_at_rate(rates[c.from])
    };
    let skipped =
        |cid: ConnectionId| -> bool { ignore_buffers && model.connections[cid].buffer.is_some() };

    let mut updated: Option<PortId> = None;
    for _ in 0..n.max(1) {
        updated = None;
        for (cid, c) in model.connections.iter_enumerated() {
            if skipped(cid) {
                continue;
            }
            let w = weight(cid);
            if offsets[c.from] + w > offsets[c.to] {
                offsets[c.to] = offsets[c.from] + w;
                pred[c.to] = Some((c.from, cid));
                updated = Some(c.to);
            }
        }
        if updated.is_none() {
            break;
        }
    }

    if let Some(start) = updated {
        // A positive cycle exists; walk predecessors to extract it.
        let mut v = start;
        for _ in 0..n {
            v = pred[v].map(|(p, _)| p).unwrap_or(v);
        }
        let mut ports = vec![v];
        let mut connections = Vec::new();
        let mut excess = Rational::ZERO;
        let mut cur = v;
        loop {
            let (p, cid) = pred[cur].expect("cycle nodes have predecessors");
            connections.push(cid);
            excess += weight(cid);
            cur = p;
            if cur == v {
                break;
            }
            ports.push(cur);
        }
        ports.reverse();
        connections.reverse();
        return Err(ConsistencyError::PositiveCycle {
            ports,
            excess,
            connections,
        });
    }

    let slacks = model
        .connections
        .iter_enumerated()
        .map(|(cid, c)| offsets[c.to] - offsets[c.from] - weight(cid))
        .collect();
    Ok((offsets, slacks))
}

impl CtaModel {
    /// Run the full consistency check: rate propagation, maximum-rate checks
    /// and delay feasibility. Polynomial time in the size of the model; all
    /// results are exact rationals.
    pub fn check_consistency(&self) -> Result<ConsistencyResult, ConsistencyError> {
        let rs = propagate_rate_structure(self)?;
        let (_scales, rates) = resolve_rates(self, &rs)?;
        let (offsets, slacks) = check_delays_at_rates(self, &rates)?;
        Ok(ConsistencyResult {
            rates,
            offsets,
            rate_groups: rs.group,
            slacks,
        })
    }

    /// The maximal achievable transfer rates: for rate groups without a
    /// source/sink-imposed rate, the largest uniform scale (as a fraction of
    /// the rate-only maximum) at which the delay constraints are still
    /// satisfiable. Groups containing a required rate keep it.
    ///
    /// The scale is computed **exactly**: every binding positive cycle has
    /// weight `E + P/f` in the scale factor `f` (with `E` the constant part
    /// and `P` the rate-dependent part over the free groups), so the factor
    /// at which the cycle becomes tight is exactly `f = −P / E`. The factor
    /// is lowered cycle by cycle until the delay check passes.
    ///
    /// Returns the per-port rates, or the error that makes even arbitrarily
    /// low rates infeasible.
    pub fn maximal_rates(&self) -> Result<IndexVec<PortId, Rational>, ConsistencyError> {
        self.maximal_rates_impl(false)
    }

    /// As [`Self::maximal_rates`], but with buffer-capacity connections
    /// treated as unbounded. These are the rates the model could reach if
    /// buffer sizing were free to enlarge every capacity — the target rates
    /// of [`crate::buffersizing::size_buffers`].
    pub fn maximal_rates_unbounded_buffers(
        &self,
    ) -> Result<IndexVec<PortId, Rational>, ConsistencyError> {
        self.maximal_rates_impl(true)
    }

    fn maximal_rates_impl(
        &self,
        ignore_buffers: bool,
    ) -> Result<IndexVec<PortId, Rational>, ConsistencyError> {
        let rs = propagate_rate_structure(self)?;
        let (_scales, base) = resolve_rates(self, &rs)?;
        // Which groups are pinned by a source or sink?
        let mut fixed = vec![false; rs.groups];
        for (p, port) in self.ports.iter_enumerated() {
            if port.required_rate.is_some() {
                fixed[rs.group[p].index()] = true;
            }
        }
        // Scale factors are solved per *connected component* of the
        // constraint graph (ports connected by any connection, rate-coupling
        // or not). Components are fully independent — no delay cycle can
        // span two of them — so scaling them jointly would let one
        // component's binding cycle needlessly slow another's maximal rates,
        // breaking the compositionality property that merging two unrelated
        // models preserves each one's analysis results.
        let comp = self.port_constraint_components();
        let n_comps = comp.iter().map(|&c| c + 1).max().unwrap_or(0);
        let mut factor: Vec<Rational> = vec![Rational::ONE; n_comps];
        let rates_at = |factor: &[Rational]| -> IndexVec<PortId, Rational> {
            base.iter_enumerated()
                .map(|(p, &r)| {
                    if fixed[rs.group[p].index()] {
                        r
                    } else {
                        r * factor[comp[p.index()]]
                    }
                })
                .collect()
        };

        // Each round either succeeds or permanently retires the witness
        // cycle, so the simple-cycle count bounds the rounds; the cap only
        // guards against pathological models.
        let max_rounds = self.connections.len() * self.connections.len() + 8;
        let mut last_error = None;
        for _ in 0..=max_rounds {
            let rates = rates_at(&factor);
            match check_delays(self, &rates, ignore_buffers) {
                Ok(_) => return Ok(rates),
                Err(ConsistencyError::PositiveCycle {
                    ports,
                    excess,
                    connections,
                }) => {
                    // The cycle lies within one constraint component; split
                    // its weight into E + P/factor there: epsilon terms and
                    // fixed-group phi terms are constant, free-group phi
                    // terms scale with 1/factor.
                    let cycle_comp = comp[self.connections[connections[0]].from.index()];
                    let mut e_sum = Rational::ZERO;
                    let mut p_sum = Rational::ZERO;
                    for &cid in &connections {
                        let c = &self.connections[cid];
                        debug_assert_eq!(comp[c.from.index()], cycle_comp);
                        e_sum += c.epsilon;
                        if !c.phi.is_zero() {
                            let term = c.phi / base[c.from];
                            if fixed[rs.group[c.from].index()] {
                                e_sum += term;
                            } else {
                                p_sum += term;
                            }
                        }
                    }
                    if p_sum.is_negative() {
                        // weight(f) = E + P/f with P < 0 is increasing in f
                        // and positive at the current factor, so E > 0 and
                        // the unique zero crossing -P/E lies strictly below.
                        let threshold = -p_sum / e_sum;
                        debug_assert!(threshold.is_positive() && threshold < factor[cycle_comp]);
                        factor[cycle_comp] = threshold;
                        last_error = Some(ConsistencyError::PositiveCycle {
                            ports,
                            excess,
                            connections,
                        });
                    } else {
                        // The cycle's delay does not shrink at lower rates:
                        // no positive factor is feasible.
                        return Err(ConsistencyError::PositiveCycle {
                            ports,
                            excess,
                            connections,
                        });
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_error.expect("rounds exhausted only after at least one cycle"))
    }

    /// Connected components of the constraint graph: ports joined by *any*
    /// connection (rate-coupling or pure timing constraint). Returns a
    /// component index per port (dense, 0-based).
    fn port_constraint_components(&self) -> Vec<usize> {
        let n = self.ports.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for c in &self.connections {
            let (a, b) = (
                find(&mut parent, c.from.index()),
                find(&mut parent, c.to.index()),
            );
            if a != b {
                parent[a] = b;
            }
        }
        // Densify root ids to 0..k.
        let mut dense: Vec<Option<usize>> = vec![None; n];
        let mut next = 0usize;
        (0..n)
            .map(|p| {
                let root = find(&mut parent, p);
                *dense[root].get_or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect()
    }

    /// Like [`Self::check_consistency`], but instead of failing when the
    /// maximal rates violate a delay constraint, scale the rate groups that
    /// are not pinned by a source or sink down to their maximal *feasible*
    /// rates (the paper's "maximal achievable transfer rates"), computed
    /// exactly. Fails only when no positive rate satisfies the constraints,
    /// e.g. an unattainable latency bound.
    pub fn consistency_at_maximal_rates(&self) -> Result<ConsistencyResult, ConsistencyError> {
        let rs = propagate_rate_structure(self)?;
        let rates = self.maximal_rates()?;
        let (offsets, slacks) = check_delays_at_rates(self, &rates)?;
        Ok(ConsistencyResult {
            rates,
            offsets,
            rate_groups: rs.group,
            slacks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::CtaModel;

    fn int(n: i128) -> Rational {
        Rational::from_int(n)
    }

    /// Producer -> consumer with a buffer back-edge of capacity `cap`.
    fn producer_consumer(
        prod_rate: Rational,
        cons_rate: Rational,
        response: Rational,
        cap: Rational,
    ) -> CtaModel {
        let mut m = CtaModel::new();
        let prod = m.add_component("prod", None);
        let cons = m.add_component("cons", None);
        let p = m.add_port(prod, "out", Some(prod_rate));
        let q = m.add_port(cons, "in", Some(cons_rate));
        m.connect(p, q, response, Rational::ZERO, Rational::ONE);
        m.connect_buffer("b", q, p, response, -cap, Rational::ONE);
        m
    }

    /// 0.1 ms as an exact rational (seconds).
    fn response() -> Rational {
        Rational::new(1, 10_000)
    }

    #[test]
    fn simple_pair_is_consistent() {
        let m = producer_consumer(int(1000), int(1500), response(), int(4));
        let r = m.check_consistency().unwrap();
        // Both ports in one rate group, running at exactly the slower max rate.
        let (p, q) = (PortId::new(0), PortId::new(1));
        assert_eq!(r.rate_groups[p], r.rate_groups[q]);
        assert_eq!(r.rates[p], int(1000));
        assert_eq!(r.rates[q], int(1000));
        assert!(r.min_slack().unwrap() >= Rational::ZERO);
        // The f64 boundary conversion is lossless for these values.
        assert_eq!(r.rate_hz(p), 1000.0);
    }

    #[test]
    fn too_small_buffer_gives_positive_cycle() {
        // Round trip delay 2 * 1e-4 s; at 1000 Hz the buffer delay is
        // -cap/1000. cap = 1/10 gives cycle weight 2e-4 - 1e-4 > 0.
        let m = producer_consumer(int(1000), int(1000), response(), Rational::new(1, 10));
        match m.check_consistency() {
            Err(ConsistencyError::PositiveCycle {
                excess,
                connections,
                ..
            }) => {
                // Exactly 2/10000 - (1/10)/1000 = 1/10000 seconds of excess.
                assert_eq!(excess, Rational::new(1, 10_000));
                assert_eq!(connections.len(), 2);
            }
            other => panic!("expected positive cycle, got {other:?}"),
        }
    }

    #[test]
    fn buffer_of_exactly_round_trip_is_feasible() {
        // Cycle: eps 2e-4, phi -cap at rate 1000 -> need cap >= 1/5; with
        // cap = 1/5 the cycle weight is exactly zero — accepted without any
        // tolerance.
        let m = producer_consumer(int(1000), int(1000), response(), Rational::new(1, 5));
        let r = m.check_consistency().unwrap();
        assert_eq!(r.min_slack(), Some(Rational::ZERO));
    }

    #[test]
    fn required_rate_fixes_group_rate() {
        let mut m = producer_consumer(int(10_000), int(10_000), Rational::new(1, 100_000), int(4));
        // Add a source port wired to the producer that fixes 2 kHz.
        let src = m.add_component("src", None);
        let s = m.add_required_rate_port(src, "out", int(2000));
        m.connect(
            s,
            PortId::new(0),
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        let r = m.check_consistency().unwrap();
        assert_eq!(r.rates[PortId::new(0)], int(2000));
        assert_eq!(r.rates[PortId::new(1)], int(2000));
    }

    #[test]
    fn conflicting_required_rates_detected() {
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_required_rate_port(a, "p", int(1000));
        let q = m.add_required_rate_port(a, "q", int(1500));
        m.connect(p, q, Rational::ZERO, Rational::ZERO, Rational::ONE);
        assert!(matches!(
            m.check_consistency(),
            Err(ConsistencyError::RequiredRateConflict { .. })
        ));
    }

    #[test]
    fn required_rate_exceeding_max_rate_detected() {
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_required_rate_port(a, "p", int(1000));
        let q = m.add_port(a, "q", Some(int(400)));
        m.connect(p, q, Rational::ZERO, Rational::ZERO, Rational::ONE);
        assert!(matches!(
            m.check_consistency(),
            Err(ConsistencyError::MaxRateExceeded { .. })
        ));
    }

    #[test]
    fn gamma_cycle_product_must_be_one() {
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_port(a, "p", Some(int(1000)));
        let q = m.add_port(a, "q", Some(int(1000)));
        m.connect(p, q, Rational::ZERO, Rational::ZERO, Rational::new(2, 1));
        m.connect(q, p, Rational::ZERO, Rational::ZERO, Rational::new(1, 1));
        assert!(matches!(
            m.check_consistency(),
            Err(ConsistencyError::RateConflict { .. })
        ));
    }

    #[test]
    fn multi_rate_gamma_propagates_rates_exactly() {
        // Splitter: input at 6.4 MHz, video output gamma 10/16, audio output
        // gamma 1/25.
        let mut m = CtaModel::new();
        let w = m.add_component("splitter", None);
        let rf = m.add_required_rate_port(w, "rf", int(6_400_000));
        let vid = m.add_port(w, "vid", None);
        let aud = m.add_port(w, "aud", None);
        m.connect(
            rf,
            vid,
            Rational::ZERO,
            Rational::ZERO,
            Rational::new(10, 16),
        );
        m.connect(
            rf,
            aud,
            Rational::ZERO,
            Rational::ZERO,
            Rational::new(1, 25),
        );
        let r = m.check_consistency().unwrap();
        assert_eq!(r.rates[vid], int(4_000_000));
        assert_eq!(r.rates[aud], int(256_000));
    }

    #[test]
    fn fig8c_rate_dependent_delay_values() {
        // The connection (p0, p2) of Fig. 8 has phi = psi - psi/pi = 4 - 4/2 = 2
        // and gamma = 2/4. At rate r the delay is rho_g + 2/r.
        let rho = Rational::new(1, 1_000_000);
        let psi = int(4);
        let pi = int(2);
        let phi = psi - psi / pi;
        let mut m = CtaModel::new();
        let w = m.add_component("wg", None);
        let p0 = m.add_port(w, "p0", Some(int(1_000_000)));
        let p2 = m.add_port(w, "p2", Some(int(1_000_000)));
        let c = m.connect(p0, p2, rho, phi, Rational::new(2, 4));
        assert_eq!(
            m.connections[c].delay_at_rate(int(1_000_000)),
            rho + Rational::new(2, 1_000_000)
        );
        let r = m.check_consistency().unwrap();
        assert_eq!(r.rates[p2] / r.rates[p0], Rational::new(1, 2));
    }

    #[test]
    fn offsets_respect_connection_delays() {
        let m = producer_consumer(int(1000), int(1000), Rational::new(1, 5000), int(1));
        let r = m.check_consistency().unwrap();
        for (cid, c) in m.connections.iter_enumerated() {
            let d = c.delay_at_rate(r.rates[c.from]);
            assert!(
                r.offsets[c.to] >= r.offsets[c.from] + d,
                "connection {cid} violated"
            );
        }
    }

    #[test]
    fn maximal_rates_scale_down_to_the_exact_feasible_rate() {
        // Buffer too small for the max rate but fine at a lower rate:
        // cycle eps 2e-4 s, capacity 1 token -> feasible iff rate <= 5000 Hz.
        // The exact algorithm finds *exactly* 5000 Hz, not an approximation.
        let m = producer_consumer(int(20_000), int(20_000), response(), int(1));
        assert!(m.check_consistency().is_err());
        let rates = m.maximal_rates().unwrap();
        assert_eq!(rates[PortId::new(0)], int(5000));
        assert_eq!(rates[PortId::new(1)], int(5000));
    }

    #[test]
    fn maximal_rates_keep_required_rates_fixed() {
        let mut m = producer_consumer(int(10_000), int(10_000), Rational::new(1, 100_000), int(8));
        let src = m.add_component("src", None);
        let s = m.add_required_rate_port(src, "out", int(1000));
        m.connect(
            s,
            PortId::new(0),
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        let rates = m.maximal_rates().unwrap();
        assert_eq!(rates[PortId::new(0)], int(1000));
    }

    #[test]
    fn maximal_rates_are_solved_per_connected_component() {
        // Two disconnected producer/consumer pairs: one with a binding
        // buffer (max 5 kHz achievable), one unconstrained (20 kHz). The
        // factors are per component, so the unconstrained pair keeps its
        // full rate instead of being dragged down to the other's.
        let mut m = producer_consumer(int(20_000), int(20_000), response(), int(1));
        let free = producer_consumer(int(20_000), int(20_000), response(), int(64));
        let off = m.merge(&free);
        let rates = m.maximal_rates().unwrap();
        assert_eq!(rates[PortId::new(0)], int(5000));
        assert_eq!(rates[off.port(PortId::new(0))], int(20_000));
    }

    #[test]
    fn maximal_rates_with_unbounded_buffers_ignore_capacity() {
        // At the max rate the capacity-1 buffer is binding, but with
        // unbounded buffers the full 20 kHz is achievable.
        let m = producer_consumer(int(20_000), int(20_000), response(), int(1));
        let rates = m.maximal_rates_unbounded_buffers().unwrap();
        assert_eq!(rates[PortId::new(0)], int(20_000));
    }

    #[test]
    fn latency_style_negative_epsilon_cycle() {
        // src -> snk forward delay 3 ms, latency constraint 5 ms modelled as
        // a -5 ms back connection: consistent. With a 2 ms constraint:
        // inconsistent (and no rate reduction can help: the cycle has no
        // rate-dependent term).
        let build = |bound_ms: i128| {
            let mut m = CtaModel::new();
            let src = m.add_component("src", None);
            let snk = m.add_component("snk", None);
            let s = m.add_required_rate_port(src, "out", int(1000));
            let k = m.add_required_rate_port(snk, "in", int(1000));
            m.connect(s, k, Rational::new(3, 1000), Rational::ZERO, Rational::ONE);
            m.connect(
                k,
                s,
                Rational::new(-bound_ms, 1000),
                Rational::ZERO,
                Rational::ONE,
            );
            m
        };
        assert!(build(5).check_consistency().is_ok());
        assert!(matches!(
            build(2).check_consistency(),
            Err(ConsistencyError::PositiveCycle { .. })
        ));
        assert!(matches!(
            build(2).maximal_rates(),
            Err(ConsistencyError::PositiveCycle { .. })
        ));
    }

    #[test]
    fn empty_model_is_consistent() {
        let m = CtaModel::new();
        let r = m.check_consistency().unwrap();
        assert!(r.rates.is_empty());
        assert_eq!(r.min_slack(), None);
    }

    #[test]
    fn consistency_is_deterministic() {
        // Exact arithmetic makes repeated analyses bit-identical.
        let m = producer_consumer(int(48_000), int(44_100), Rational::new(1, 96_000), int(3));
        let first = m.check_consistency().unwrap();
        for _ in 0..10 {
            assert_eq!(m.check_consistency().unwrap(), first);
        }
    }
}
