//! Registries describing the computation that OIL coordinates.
//!
//! OIL is a *coordination* language: the actual computation is performed by
//! side-effect-free functions (implemented in C/C++ in the paper, in Rust in
//! this reproduction) and by *black-box modules* whose internals are unknown
//! but whose temporal interface (token rates and response time) is specified.
//!
//! The compiler needs two pieces of information about each coordinated
//! function to build a temporal analysis model:
//!
//! * whether it is **side-effect free** (a requirement of the language; state
//!   is allowed, global side effects are not), and
//! * its **worst-case response time**, which becomes the firing duration of
//!   the corresponding dataflow actor / CTA component.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Temporal and semantic information about one coordinated function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSignature {
    /// Function name as it appears in OIL source.
    pub name: String,
    /// Worst-case response time in seconds (execution plus worst-case
    /// interference on its processor).
    pub response_time: f64,
    /// True if the function keeps internal state between invocations
    /// (allowed by OIL).
    pub has_state: bool,
    /// True if the function is side-effect free (required by OIL). The
    /// registry lets tools model the outcome of external side-effect
    /// analyses; functions marked `false` are rejected by semantic analysis.
    pub side_effect_free: bool,
}

impl FunctionSignature {
    /// A side-effect-free, stateless function with the given response time.
    pub fn pure(name: impl Into<String>, response_time: f64) -> Self {
        FunctionSignature {
            name: name.into(),
            response_time,
            has_state: false,
            side_effect_free: true,
        }
    }

    /// A side-effect-free function that keeps internal state (e.g. a filter
    /// with a delay line).
    pub fn stateful(name: impl Into<String>, response_time: f64) -> Self {
        FunctionSignature {
            name: name.into(),
            response_time,
            has_state: true,
            side_effect_free: true,
        }
    }

    /// A function with observable side effects; OIL rejects programs calling
    /// such functions.
    pub fn impure(name: impl Into<String>, response_time: f64) -> Self {
        FunctionSignature {
            name: name.into(),
            response_time,
            has_state: true,
            side_effect_free: false,
        }
    }
}

/// The temporal interface of a black-box module (Section V-C of the paper):
/// a module only known by the maximum rates and delays of its interface, such
/// as the `Video` and `Audio` modules of the PAL decoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackBoxInterface {
    /// Module name as instantiated in OIL source.
    pub name: String,
    /// Number of tokens consumed from each input stream parameter per firing,
    /// in parameter order (inputs only).
    pub consumption: Vec<u64>,
    /// Number of tokens produced on each output stream parameter per firing,
    /// in parameter order (outputs only).
    pub production: Vec<u64>,
    /// Worst-case response time of one firing, in seconds.
    pub response_time: f64,
}

impl BlackBoxInterface {
    /// Construct a black-box interface.
    pub fn new(
        name: impl Into<String>,
        consumption: Vec<u64>,
        production: Vec<u64>,
        response_time: f64,
    ) -> Self {
        BlackBoxInterface {
            name: name.into(),
            consumption,
            production,
            response_time,
        }
    }
}

/// Registry of coordinated functions and black-box module interfaces.
///
/// Unknown functions are treated as side-effect free with a configurable
/// default response time so that programs can be analysed before all
/// implementations exist; a warning is emitted by semantic analysis for each
/// unknown function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionRegistry {
    functions: BTreeMap<String, FunctionSignature>,
    black_boxes: BTreeMap<String, BlackBoxInterface>,
    /// Response time assumed for functions that are not registered, in
    /// seconds.
    pub default_response_time: f64,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry {
            functions: BTreeMap::new(),
            black_boxes: BTreeMap::new(),
            default_response_time: 1e-6,
        }
    }
}

impl FunctionRegistry {
    /// An empty registry with a 1 µs default response time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a function signature.
    pub fn register(&mut self, sig: FunctionSignature) -> &mut Self {
        self.functions.insert(sig.name.clone(), sig);
        self
    }

    /// Register (or replace) a black-box module interface.
    pub fn register_black_box(&mut self, bb: BlackBoxInterface) -> &mut Self {
        self.black_boxes.insert(bb.name.clone(), bb);
        self
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionSignature> {
        self.functions.get(name)
    }

    /// Look up a black-box module interface by name.
    pub fn black_box(&self, name: &str) -> Option<&BlackBoxInterface> {
        self.black_boxes.get(name)
    }

    /// True if the function is known to the registry.
    pub fn is_known(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// The response time to assume for `name`: the registered worst case, or
    /// the default for unknown functions.
    pub fn response_time(&self, name: &str) -> f64 {
        self.functions
            .get(name)
            .map(|f| f.response_time)
            .unwrap_or(self.default_response_time)
    }

    /// True if the function may be coordinated by OIL (side-effect free or
    /// unknown).
    pub fn is_side_effect_free(&self, name: &str) -> bool {
        self.functions
            .get(name)
            .map(|f| f.side_effect_free)
            .unwrap_or(true)
    }

    /// Iterate over all registered functions.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionSignature> {
        self.functions.values()
    }

    /// Iterate over all registered black-box interfaces.
    pub fn black_boxes(&self) -> impl Iterator<Item = &BlackBoxInterface> {
        self.black_boxes.values()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_and_defaults() {
        let mut reg = FunctionRegistry::new();
        assert!(reg.is_empty());
        reg.register(FunctionSignature::pure("f", 2e-6));
        reg.register(FunctionSignature::stateful("lpf", 5e-6));
        reg.register(FunctionSignature::impure("printf", 1e-6));

        assert_eq!(reg.len(), 3);
        assert!(reg.is_known("f"));
        assert!(!reg.is_known("unknown"));
        assert_eq!(reg.response_time("f"), 2e-6);
        assert_eq!(reg.response_time("unknown"), reg.default_response_time);
        assert!(reg.is_side_effect_free("f"));
        assert!(reg.is_side_effect_free("unknown"));
        assert!(!reg.is_side_effect_free("printf"));
        assert!(reg.function("lpf").unwrap().has_state);
    }

    #[test]
    fn black_box_interfaces() {
        let mut reg = FunctionRegistry::new();
        reg.register_black_box(BlackBoxInterface::new("Audio", vec![8], vec![1], 1e-6));
        let bb = reg.black_box("Audio").unwrap();
        assert_eq!(bb.consumption, vec![8]);
        assert_eq!(bb.production, vec![1]);
        assert!(reg.black_box("Video").is_none());
        assert_eq!(reg.black_boxes().count(), 1);
    }

    #[test]
    fn register_replaces_existing() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSignature::pure("f", 1e-6));
        reg.register(FunctionSignature::pure("f", 9e-6));
        assert_eq!(reg.response_time("f"), 9e-6);
        assert_eq!(reg.len(), 1);
    }
}
