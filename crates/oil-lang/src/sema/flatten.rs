//! Flattening of the module hierarchy into an application graph.
//!
//! The parallel specification of an OIL program is a hierarchy of `mod par`
//! instantiations whose leaves are sequential modules and black-box modules.
//! For task-graph extraction and CTA derivation the compiler needs the
//! *flattened* view: every leaf instance, every channel (FIFO, source, sink)
//! and which instances write and read each channel. The hierarchy itself is
//! preserved in the instance paths (`Splitter.SRC_A`) so the derived CTA model
//! can mirror the nesting, as the paper's Figure 12 does.

use crate::ast::*;
use crate::registry::FunctionRegistry;
use crate::span::{Diagnostic, Span};
use oil_dataflow::define_index_type;
use oil_dataflow::index::{ChannelId, IndexVec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

define_index_type! {
    /// A leaf instance of the flattened application graph.
    pub struct InstanceId = "i";
}

/// How a channel transports data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// A FIFO buffer between modules.
    Fifo,
    /// A time-triggered source producing samples at a fixed rate.
    Source {
        /// Function implementing the environment communication.
        func: String,
        /// Sampling frequency in Hz.
        rate_hz: f64,
    },
    /// A time-triggered sink consuming samples at a fixed rate.
    Sink {
        /// Function implementing the environment communication.
        func: String,
        /// Consumption frequency in Hz.
        rate_hz: f64,
    },
}

impl ChannelKind {
    /// The fixed environment rate, if this is a source or sink.
    pub fn rate_hz(&self) -> Option<f64> {
        match self {
            ChannelKind::Fifo => None,
            ChannelKind::Source { rate_hz, .. } | ChannelKind::Sink { rate_hz, .. } => {
                Some(*rate_hz)
            }
        }
    }

    /// True for source channels.
    pub fn is_source(&self) -> bool {
        matches!(self, ChannelKind::Source { .. })
    }

    /// True for sink channels.
    pub fn is_sink(&self) -> bool {
        matches!(self, ChannelKind::Sink { .. })
    }
}

/// A channel of the flattened application graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Hierarchical name, e.g. `C.x` or `<top>.vid`.
    pub name: String,
    /// Element type name (opaque to OIL).
    pub ty: String,
    /// FIFO, source or sink.
    pub kind: ChannelKind,
    /// The leaf instance writing this channel (`None` for sources, which are
    /// written by the environment).
    pub writer: Option<InstanceId>,
    /// The leaf instances reading this channel. All readers observe the same
    /// values (FIFOs in OIL may have multiple readers).
    pub readers: Vec<InstanceId>,
}

/// A binding of a leaf instance's stream parameter to a channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binding {
    /// Parameter name inside the instantiated module.
    pub param: String,
    /// True if the instance writes the channel through this parameter.
    pub out: bool,
    /// The bound channel.
    pub channel: ChannelId,
}

/// A leaf instance of the flattened application: a sequential module or a
/// black-box module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleInstance {
    /// Hierarchical instance path, e.g. `Splitter.SRC_A`.
    pub path: String,
    /// The instantiated module's name.
    pub module_name: String,
    /// Index of the module definition in [`Program::modules`], or `None` for
    /// black boxes.
    pub module_index: Option<usize>,
    /// True if this instance is a black box known only by its interface.
    pub black_box: bool,
    /// Stream parameter bindings in parameter order.
    pub bindings: Vec<Binding>,
}

/// A latency constraint between two source/sink channels, resolved to channel
/// ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySpec {
    /// Channel of the constrained source/sink (`start <subject> ..`).
    pub subject: ChannelId,
    /// Constraint amount in milliseconds.
    pub amount_ms: f64,
    /// Whether the subject starts after or before the reference.
    pub relation: LatencyRelation,
    /// Channel of the reference source/sink.
    pub reference: ChannelId,
}

/// The flattened application graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AppGraph {
    /// All leaf instances.
    pub instances: IndexVec<InstanceId, ModuleInstance>,
    /// All channels.
    pub channels: IndexVec<ChannelId, Channel>,
    /// All latency constraints.
    pub latencies: Vec<LatencySpec>,
}

impl AppGraph {
    /// Find a channel by its hierarchical name suffix (e.g. `"vid"` matches
    /// `<top>.vid`).
    pub fn channel_named(&self, suffix: &str) -> Option<(ChannelId, &Channel)> {
        self.channels
            .iter_enumerated()
            .find(|(_, c)| c.name == suffix || c.name.ends_with(&format!(".{suffix}")))
    }

    /// Find an instance by the final component of its path.
    pub fn instance_named(&self, name: &str) -> Option<(InstanceId, &ModuleInstance)> {
        self.instances
            .iter_enumerated()
            .find(|(_, i)| i.path == name || i.path.ends_with(&format!(".{name}")))
    }

    /// All source channels.
    pub fn sources(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter_enumerated()
            .filter(|(_, c)| c.kind.is_source())
    }

    /// All sink channels.
    pub fn sinks(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter_enumerated()
            .filter(|(_, c)| c.kind.is_sink())
    }
}

struct Flattener<'a> {
    program: &'a Program,
    registry: &'a FunctionRegistry,
    graph: AppGraph,
    diags: &'a mut Vec<Diagnostic>,
}

/// Flatten `program`'s top module into an [`AppGraph`]. Errors are appended to
/// `diags`; `None` is returned only when a fatal structural error was found.
pub fn flatten(
    program: &Program,
    registry: &FunctionRegistry,
    diags: &mut Vec<Diagnostic>,
) -> Option<AppGraph> {
    let top = match program.top_module() {
        Some(t) => t,
        None => {
            diags.push(Diagnostic::error(
                "program has no modules",
                Span::synthetic(),
            ));
            return None;
        }
    };

    let mut fl = Flattener {
        program,
        registry,
        graph: AppGraph::default(),
        diags,
    };

    match &top.body {
        ModuleBody::Par(_) => {
            let top_name = top.display_name().to_string();
            // Top-level stream parameters (unusual but allowed) become
            // unconnected FIFO channels.
            let mut bindings = BTreeMap::new();
            for p in &top.params {
                let idx = fl.add_channel(
                    format!("{top_name}.{}", p.name.name),
                    p.ty.name.clone(),
                    ChannelKind::Fifo,
                );
                bindings.insert(p.name.name.clone(), idx);
            }
            fl.expand_par(top, &top_name, &bindings);
        }
        ModuleBody::Seq(_) => {
            // A program whose top module is sequential: analyse it standalone
            // with one synthetic channel per stream parameter.
            let top_name = top.display_name().to_string();
            let module_index = program
                .modules
                .iter()
                .position(|m| std::ptr::eq(m, top))
                .unwrap_or(program.modules.len() - 1);
            let mut inst_bindings = Vec::new();
            for p in &top.params {
                let idx = fl.add_channel(
                    format!("{top_name}.{}", p.name.name),
                    p.ty.name.clone(),
                    ChannelKind::Fifo,
                );
                inst_bindings.push(Binding {
                    param: p.name.name.clone(),
                    out: p.out,
                    channel: idx,
                });
            }
            fl.add_instance(ModuleInstance {
                path: top_name.clone(),
                module_name: top_name,
                module_index: Some(module_index),
                black_box: false,
                bindings: inst_bindings,
            });
        }
    }

    fl.check_channel_connectivity();
    Some(fl.graph)
}

impl<'a> Flattener<'a> {
    fn add_channel(&mut self, name: String, ty: String, kind: ChannelKind) -> ChannelId {
        self.graph.channels.push(Channel {
            name,
            ty,
            kind,
            writer: None,
            readers: Vec::new(),
        })
    }

    fn add_instance(&mut self, instance: ModuleInstance) -> InstanceId {
        let idx = self.graph.instances.next_index();
        // Register reader/writer relationships on the channels.
        for b in &instance.bindings {
            if b.out {
                let ch = &mut self.graph.channels[b.channel];
                if ch.kind.is_source() {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "instance `{}` writes source `{}`; sources are written by the environment only",
                            instance.path, ch.name
                        ),
                        Span::synthetic(),
                    ));
                } else if let Some(other) = ch.writer {
                    let other_path = self.graph.instances[other].path.clone();
                    self.diags.push(Diagnostic::error(
                        format!(
                            "FIFO `{}` has more than one writer: `{}` and `{}`",
                            ch.name, other_path, instance.path
                        ),
                        Span::synthetic(),
                    ));
                } else {
                    ch.writer = Some(idx);
                }
            } else {
                self.graph.channels[b.channel].readers.push(idx);
            }
        }
        self.graph.instances.push(instance);
        idx
    }

    /// Source/sink frequencies must convert losslessly into the exact
    /// rationals the temporal analyses compute with; a literal too extreme
    /// for `i128` is a front-end error, not a panic deep in the compiler.
    fn check_exact_rate(&mut self, name: &str, rate_hz: f64, span: Span) {
        if oil_dataflow::Rational::from_f64_lossless(rate_hz).is_none() {
            self.diags.push(Diagnostic::error(
                format!("rate {rate_hz} Hz of `{name}` has no exact rational representation"),
                span,
            ));
        }
    }

    fn expand_par(&mut self, module: &Module, path: &str, outer: &BTreeMap<String, ChannelId>) {
        let ModuleBody::Par(body) = &module.body else {
            return;
        };

        // Channels visible in this body: the outer bindings plus local
        // declarations.
        let mut visible = outer.clone();
        for b in &body.buffers {
            match b {
                BufferDecl::Fifo { ty, names, .. } => {
                    for n in names {
                        let idx = self.add_channel(
                            format!("{path}.{}", n.name),
                            ty.name.clone(),
                            ChannelKind::Fifo,
                        );
                        visible.insert(n.name.clone(), idx);
                    }
                }
                BufferDecl::Source {
                    ty,
                    name,
                    func,
                    rate,
                    span,
                } => {
                    self.check_exact_rate(&name.name, rate.hz, *span);
                    let idx = self.add_channel(
                        format!("{path}.{}", name.name),
                        ty.name.clone(),
                        ChannelKind::Source {
                            func: func.name.clone(),
                            rate_hz: rate.hz,
                        },
                    );
                    visible.insert(name.name.clone(), idx);
                }
                BufferDecl::Sink {
                    ty,
                    name,
                    func,
                    rate,
                    span,
                } => {
                    self.check_exact_rate(&name.name, rate.hz, *span);
                    let idx = self.add_channel(
                        format!("{path}.{}", name.name),
                        ty.name.clone(),
                        ChannelKind::Sink {
                            func: func.name.clone(),
                            rate_hz: rate.hz,
                        },
                    );
                    visible.insert(name.name.clone(), idx);
                }
            }
        }

        // Latency constraints of this body.
        for l in &body.latencies {
            if oil_dataflow::Rational::from_f64_lossless(l.amount_ms).is_none() {
                self.diags.push(Diagnostic::error(
                    format!(
                        "latency amount {} ms has no exact rational representation",
                        l.amount_ms
                    ),
                    l.span,
                ));
                continue;
            }
            let subject = visible.get(&l.subject.name).copied();
            let reference = visible.get(&l.reference.name).copied();
            if let (Some(subject), Some(reference)) = (subject, reference) {
                self.graph.latencies.push(LatencySpec {
                    subject,
                    amount_ms: l.amount_ms,
                    relation: l.relation,
                    reference,
                });
            }
            // Unresolvable endpoints were already reported by the restriction
            // checks.
        }

        // Instantiations.
        for (call_idx, call) in body.calls.iter().enumerate() {
            let child_path = format!("{path}.{}", call.module.name);
            // Disambiguate multiple instantiations of the same module.
            let child_path = if body
                .calls
                .iter()
                .filter(|c| c.module.name == call.module.name)
                .count()
                > 1
            {
                format!("{child_path}#{call_idx}")
            } else {
                child_path
            };

            let arg_channels: Vec<(bool, Option<ChannelId>)> = call
                .args
                .iter()
                .map(|a| (a.out, visible.get(&a.name.name).copied()))
                .collect();
            if arg_channels.iter().any(|(_, c)| c.is_none()) {
                // Already reported by restriction checks.
                continue;
            }

            match self.program.module(&call.module.name) {
                Some(callee) if callee.kind == ModuleKind::Par => {
                    let mut child_bindings = BTreeMap::new();
                    for (param, (_, ch)) in callee.params.iter().zip(&arg_channels) {
                        child_bindings.insert(param.name.name.clone(), ch.unwrap());
                    }
                    self.expand_par(callee, &child_path, &child_bindings);
                }
                Some(callee) => {
                    // A sequential leaf module.
                    let module_index = self
                        .program
                        .modules
                        .iter()
                        .position(|m| std::ptr::eq(m, callee));
                    let bindings = callee
                        .params
                        .iter()
                        .zip(&arg_channels)
                        .map(|(param, (_, ch))| Binding {
                            param: param.name.name.clone(),
                            out: param.out,
                            channel: ch.unwrap(),
                        })
                        .collect();
                    self.add_instance(ModuleInstance {
                        path: child_path,
                        module_name: call.module.name.clone(),
                        module_index,
                        black_box: false,
                        bindings,
                    });
                }
                None => {
                    // A black-box module, known only by its interface.
                    if self.registry.black_box(&call.module.name).is_none() {
                        self.diags.push(Diagnostic::warning(
                            format!(
                                "module `{}` is not defined and has no registered interface; \
                                 treating it as a single-rate black box",
                                call.module.name
                            ),
                            call.span,
                        ));
                    }
                    let bindings = arg_channels
                        .iter()
                        .enumerate()
                        .map(|(i, (out, ch))| Binding {
                            param: format!("p{i}"),
                            out: *out,
                            channel: ch.unwrap(),
                        })
                        .collect();
                    self.add_instance(ModuleInstance {
                        path: child_path,
                        module_name: call.module.name.clone(),
                        module_index: None,
                        black_box: true,
                        bindings,
                    });
                }
            }
        }
    }

    fn check_channel_connectivity(&mut self) {
        for ch in &self.graph.channels {
            match &ch.kind {
                ChannelKind::Fifo => {
                    if ch.writer.is_none() && !ch.readers.is_empty() {
                        self.diags.push(Diagnostic::error(
                            format!("FIFO `{}` is read but never written", ch.name),
                            Span::synthetic(),
                        ));
                    }
                    if ch.writer.is_some() && ch.readers.is_empty() {
                        self.diags.push(Diagnostic::warning(
                            format!("FIFO `{}` is written but never read", ch.name),
                            Span::synthetic(),
                        ));
                    }
                }
                ChannelKind::Source { .. } => {
                    if ch.readers.is_empty() {
                        self.diags.push(Diagnostic::warning(
                            format!("source `{}` is never read", ch.name),
                            Span::synthetic(),
                        ));
                    }
                }
                ChannelKind::Sink { .. } => {
                    if ch.writer.is_none() {
                        self.diags.push(Diagnostic::error(
                            format!("sink `{}` is never written", ch.name),
                            Span::synthetic(),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::registry::{BlackBoxInterface, FunctionRegistry};

    fn flatten_src(src: &str) -> (AppGraph, Vec<Diagnostic>) {
        let program = parse_program(src).unwrap();
        let registry = FunctionRegistry::new();
        let mut diags = Vec::new();
        let g = flatten(&program, &registry, &mut diags).unwrap();
        (g, diags)
    }

    #[test]
    fn flatten_two_level_hierarchy() {
        let (g, diags) = flatten_src(
            r#"
            mod seq B(int a, out int z){ loop{ f(a, out z); } while(1); }
            mod seq C(int a, int z, out int b){ loop{ g(a, z, out b); } while(1); }
            mod par A(int a, out int b){ fifo int z; B(a, out z) || C(a, z, out b) }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                A(x, out y)
            }
            "#,
        );
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
        assert_eq!(g.instances.len(), 2);
        assert_eq!(g.channels.len(), 3);
        let (_, z) = g.channel_named("z").unwrap();
        assert_eq!(z.kind, ChannelKind::Fifo);
        assert!(z.name.starts_with("D.A."));
        let (bi, _) = g.instance_named("B").unwrap();
        assert_eq!(z.writer, Some(bi));
        let (_, x) = g.channel_named("x").unwrap();
        assert!(x.kind.is_source());
        assert_eq!(x.readers.len(), 2);
    }

    #[test]
    fn flatten_standalone_seq_module() {
        let (g, _) = flatten_src("mod seq M(out int x){ k(y, out x:2); }");
        assert_eq!(g.instances.len(), 1);
        assert_eq!(g.channels.len(), 1);
        let (mi, _) = g.instance_named("M").unwrap();
        let (_, x) = g.channel_named("x").unwrap();
        assert_eq!(x.writer, Some(mi));
    }

    #[test]
    fn duplicate_instantiations_get_distinct_paths() {
        let (g, diags) = flatten_src(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par T(){
                source int s = src() @ 1 kHz;
                sink int k1 = snk() @ 1 kHz;
                sink int k2 = snk() @ 1 kHz;
                W(s, out k1) || W(s, out k2)
            }
            "#,
        );
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
        assert_eq!(g.instances.len(), 2);
        let paths: Vec<&str> = g.instances.iter().map(|i| i.path.as_str()).collect();
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn black_box_with_registered_interface_no_warning() {
        let program = parse_program(
            r#"
            mod par T(){
                source int s = src() @ 1 kHz;
                sink int k = snk() @ 1 kHz;
                Video(s, out k)
            }
            "#,
        )
        .unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register_black_box(BlackBoxInterface::new("Video", vec![1], vec![1], 1e-6));
        let mut diags = Vec::new();
        let g = flatten(&program, &registry, &mut diags).unwrap();
        assert!(
            diags.iter().all(|d| !d.message.contains("black box")),
            "{diags:?}"
        );
        assert!(g.instances.iter().all(|i| i.black_box));
    }

    #[test]
    fn sink_without_writer_is_error() {
        let (_, diags) = flatten_src(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par T(){
                fifo int unused;
                source int s = src() @ 1 kHz;
                sink int k = snk() @ 1 kHz;
                W(s, out unused)
            }
            "#,
        );
        assert!(diags
            .iter()
            .any(|d| d.is_error() && d.message.contains("never written")));
    }

    #[test]
    fn latencies_resolved_to_channels() {
        let (g, _) = flatten_src(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par T(){
                source int s = src() @ 1 kHz;
                sink int k = snk() @ 1 kHz;
                start s 5 ms before k;
                W(s, out k)
            }
            "#,
        );
        assert_eq!(g.latencies.len(), 1);
        let l = &g.latencies[0];
        assert!(g.channels[l.subject].kind.is_source());
        assert!(g.channels[l.reference].kind.is_sink());
        assert_eq!(l.amount_ms, 5.0);
    }

    #[test]
    fn sources_and_sinks_iterators() {
        let (g, _) = flatten_src(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par T(){
                source int s = src() @ 2 kHz;
                sink int k = snk() @ 2 kHz;
                W(s, out k)
            }
            "#,
        );
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
        assert_eq!(g.sources().next().unwrap().1.kind.rate_hz(), Some(2000.0));
    }
}
