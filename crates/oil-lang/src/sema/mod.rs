//! Semantic analysis of OIL programs.
//!
//! Analysis proceeds in three phases:
//!
//! 1. **Restriction checks** ([`restrict`]): the rules that keep OIL
//!    analysable — unique module names, no (mutual) recursion between modules,
//!    no instantiation of modules from sequential code, matching instantiation
//!    arities/directions and side-effect-free coordinated functions.
//! 2. **Stream-access checks** ([`streams`]): the rules of Section IV-A of the
//!    paper — output streams must be written every loop iteration, streams of
//!    a sequential module should be accessed in every top-level while-loop so
//!    that sources and sinks can remain strictly periodic.
//! 3. **Flattening** ([`flatten`]): the hierarchy of `mod par` instantiations
//!    is expanded into a flat application graph of leaf instances (sequential
//!    modules and black boxes) connected by channels (FIFOs, sources, sinks),
//!    which is the structure the compiler derives task graphs and CTA models
//!    from.

mod flatten;
mod restrict;
mod streams;

pub use flatten::{
    AppGraph, Binding, Channel, ChannelKind, InstanceId, LatencySpec, ModuleInstance,
};
pub use streams::written_streams;

use crate::ast::Program;
use crate::registry::FunctionRegistry;
use crate::span::Diagnostic;

/// The result of successful semantic analysis.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The analysed program.
    pub program: Program,
    /// Non-fatal diagnostics (warnings) produced during analysis.
    pub warnings: Vec<Diagnostic>,
    /// The flattened application graph rooted at the top module.
    pub graph: AppGraph,
}

/// Semantic analysis failure: one or more error diagnostics.
#[derive(Debug, Clone)]
pub struct SemaError {
    /// All diagnostics, errors and warnings alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SemaError {}

/// Run all semantic checks on `program` and flatten its module hierarchy.
pub fn analyze(
    program: &Program,
    registry: &FunctionRegistry,
) -> Result<AnalyzedProgram, SemaError> {
    let mut diagnostics = Vec::new();

    restrict::check(program, registry, &mut diagnostics);
    streams::check(program, &mut diagnostics);

    if diagnostics.iter().any(Diagnostic::is_error) {
        return Err(SemaError { diagnostics });
    }

    let graph = flatten::flatten(program, registry, &mut diagnostics);
    if diagnostics.iter().any(Diagnostic::is_error) {
        return Err(SemaError { diagnostics });
    }
    let graph = graph.expect("flatten returns a graph when no errors were emitted");

    let warnings = diagnostics;
    Ok(AnalyzedProgram {
        program: program.clone(),
        warnings,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::registry::{BlackBoxInterface, FunctionRegistry, FunctionSignature};

    fn registry() -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        for f in [
            "f", "g", "h", "k", "init", "src", "snk", "LPF", "resamp", "mix",
        ] {
            reg.register(FunctionSignature::pure(f, 1e-6));
        }
        reg
    }

    #[test]
    fn analyze_rate_conversion_program() {
        let src = r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
        "#;
        let analyzed = analyze(&parse_program(src).unwrap(), &registry()).unwrap();
        assert_eq!(analyzed.graph.instances.len(), 2);
        assert_eq!(analyzed.graph.channels.len(), 2);
        // Both channels have exactly one writer and one reader.
        for ch in &analyzed.graph.channels {
            assert!(ch.writer.is_some());
            assert_eq!(ch.readers.len(), 1);
        }
    }

    #[test]
    fn analyze_nested_hierarchy_with_sources() {
        let src = r#"
            mod seq B(int a, out int z){ loop{ f(a, out z); } while(1); }
            mod seq C(int a, int z, out int b){ loop{ g(a, z, out b); } while(1); }
            mod par A(int a, out int b){
                fifo int z;
                B(a, out z) || C(a, z, out b)
            }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                start x 5 ms before y;
                A(x, out y)
            }
        "#;
        let analyzed = analyze(&parse_program(src).unwrap(), &registry()).unwrap();
        // Two leaf instances: D.A.B and D.A.C.
        assert_eq!(analyzed.graph.instances.len(), 2);
        let paths: Vec<&str> = analyzed
            .graph
            .instances
            .iter()
            .map(|i| i.path.as_str())
            .collect();
        assert!(paths.iter().any(|p| p.ends_with("B")));
        assert!(paths.iter().any(|p| p.ends_with("C")));
        // Channels: x (source), y (sink), z (fifo).
        assert_eq!(analyzed.graph.channels.len(), 3);
        assert_eq!(
            analyzed
                .graph
                .channels
                .iter()
                .filter(|c| matches!(c.kind, ChannelKind::Source { .. }))
                .count(),
            1
        );
        assert_eq!(analyzed.graph.latencies.len(), 1);
        // Source channel x is read by both B and C (same data, multiple readers).
        let x = analyzed
            .graph
            .channels
            .iter()
            .find(|c| matches!(c.kind, ChannelKind::Source { .. }))
            .unwrap();
        assert_eq!(x.readers.len(), 2);
        assert!(x.writer.is_none());
    }

    #[test]
    fn black_box_modules_are_leaf_instances() {
        let src = r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par Top(){
                fifo int m;
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                W(x, out m) || Video(m, out y)
            }
        "#;
        let mut reg = registry();
        reg.register_black_box(BlackBoxInterface::new("Video", vec![1], vec![1], 1e-6));
        let analyzed = analyze(&parse_program(src).unwrap(), &reg).unwrap();
        assert_eq!(analyzed.graph.instances.len(), 2);
        let video = analyzed
            .graph
            .instances
            .iter()
            .find(|i| i.module_name == "Video")
            .unwrap();
        assert!(video.black_box);
    }

    #[test]
    fn unknown_instantiated_module_without_interface_is_warning() {
        let src = r#"
            mod par Top(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                Mystery(x, out y)
            }
        "#;
        let analyzed = analyze(&parse_program(src).unwrap(), &registry()).unwrap();
        assert!(analyzed
            .warnings
            .iter()
            .any(|w| w.message.contains("Mystery") && w.message.contains("black box")));
    }

    #[test]
    fn recursion_between_modules_is_rejected() {
        let src = r#"
            mod par A(int x, out int y){ B(x, out y) }
            mod par B(int x, out int y){ A(x, out y) }
        "#;
        let err = analyze(&parse_program(src).unwrap(), &registry()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("recursi")));
    }

    #[test]
    fn fifo_with_two_writers_is_rejected() {
        let src = r#"
            mod seq P(out int o){ loop{ f(out o); } while(1); }
            mod seq Q(int i){ loop{ g(i); } while(1); }
            mod par Top(){
                fifo int c;
                P(out c) || P(out c) || Q(c)
            }
        "#;
        let err = analyze(&parse_program(src).unwrap(), &registry()).unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.message.contains("writer")));
    }

    #[test]
    fn impure_function_is_rejected() {
        let src = r#"mod seq A(out int a){ loop{ log_to_disk(out a); } while(1); }"#;
        let mut reg = registry();
        reg.register(FunctionSignature::impure("log_to_disk", 1e-6));
        let err = analyze(&parse_program(src).unwrap(), &reg).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("side-effect")));
    }

    #[test]
    fn output_stream_never_written_is_rejected() {
        let src = r#"mod seq A(int a, out int b){ loop{ f(a); } while(1); }"#;
        let err = analyze(&parse_program(src).unwrap(), &registry()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("never written")));
    }
}
