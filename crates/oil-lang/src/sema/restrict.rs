//! Restriction checks that keep OIL analysable.
//!
//! The paper's Section IV: pointers, dynamic memory allocation and recursion
//! are not allowed, which makes the language not Turing complete and the
//! temporal analysis decidable. The grammar already has no pointers or
//! allocation; the checks here reject the remaining ways a program could
//! escape analysability.

use crate::ast::*;
use crate::registry::FunctionRegistry;
use crate::span::{Diagnostic, Span};
use std::collections::{BTreeMap, BTreeSet};

/// Run all restriction checks, appending diagnostics to `diags`.
pub fn check(program: &Program, registry: &FunctionRegistry, diags: &mut Vec<Diagnostic>) {
    check_unique_module_names(program, diags);
    check_no_module_recursion(program, diags);
    check_instantiations(program, diags);
    check_seq_bodies(program, registry, diags);
}

fn check_unique_module_names(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, Span> = BTreeMap::new();
    let mut anonymous = 0usize;
    for m in &program.modules {
        match &m.name {
            Some(name) => {
                if seen.insert(name.name.as_str(), name.span).is_some() {
                    diags.push(Diagnostic::error(
                        format!("module `{}` is defined more than once", name.name),
                        name.span,
                    ));
                }
            }
            None => {
                anonymous += 1;
                if anonymous > 1 {
                    diags.push(Diagnostic::error(
                        "only one anonymous top-level `mod par { .. }` block is allowed",
                        m.span,
                    ));
                }
                if m.kind != ModuleKind::Par {
                    diags.push(Diagnostic::error(
                        "the anonymous top-level module must be a `mod par`",
                        m.span,
                    ));
                }
            }
        }
    }
}

/// The module instantiation graph must be acyclic: a module (transitively)
/// instantiating itself would be unbounded recursion.
fn check_no_module_recursion(program: &Program, diags: &mut Vec<Diagnostic>) {
    // Adjacency by module name; anonymous top module uses the reserved name
    // "<top>" which no other module can instantiate anyway.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in &program.modules {
        let name = m.display_name().to_string();
        let entry = edges.entry(name).or_default();
        if let ModuleBody::Par(body) = &m.body {
            for call in &body.calls {
                entry.insert(call.module.name.clone());
            }
        }
    }

    // Depth-first search with colouring to find a cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&str, Color> =
        edges.keys().map(|k| (k.as_str(), Color::White)).collect();

    fn dfs<'a>(
        node: &'a str,
        edges: &'a BTreeMap<String, BTreeSet<String>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, Color::Grey);
        stack.push(node);
        if let Some(succs) = edges.get(node) {
            for succ in succs {
                match color.get(succ.as_str()).copied() {
                    Some(Color::Grey) => {
                        let mut cycle: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
                        cycle.push(succ.clone());
                        return Some(cycle);
                    }
                    Some(Color::White) => {
                        if let Some(c) = dfs(succ.as_str(), edges, color, stack) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    let names: Vec<&str> = edges.keys().map(|s| s.as_str()).collect();
    for name in names {
        if color.get(name) == Some(&Color::White) {
            let mut stack = Vec::new();
            if let Some(cycle) = dfs(name, &edges, &mut color, &mut stack) {
                diags.push(Diagnostic::error(
                    format!(
                        "recursive module instantiation is not allowed: {}",
                        cycle.join(" -> ")
                    ),
                    program
                        .module(&cycle[0])
                        .map(|m| m.span)
                        .unwrap_or_default(),
                ));
                return;
            }
        }
    }
}

/// Check each `mod par` instantiation against the instantiated module's
/// definition: arity and stream directions must match, and streams passed as
/// arguments must be visible in the instantiating module.
fn check_instantiations(program: &Program, diags: &mut Vec<Diagnostic>) {
    for m in &program.modules {
        let ModuleBody::Par(body) = &m.body else {
            continue;
        };

        // Names visible inside this parallel body: its own stream parameters
        // plus locally declared FIFOs, sources and sinks.
        let mut visible: BTreeSet<&str> = m.params.iter().map(|p| p.name.name.as_str()).collect();
        for b in &body.buffers {
            match b {
                BufferDecl::Fifo { names, .. } => {
                    for n in names {
                        if !visible.insert(n.name.as_str()) {
                            diags.push(Diagnostic::error(
                                format!(
                                    "`{}` is declared more than once in module `{}`",
                                    n.name,
                                    m.display_name()
                                ),
                                n.span,
                            ));
                        }
                    }
                }
                BufferDecl::Source { name, .. } | BufferDecl::Sink { name, .. } => {
                    if !visible.insert(name.name.as_str()) {
                        diags.push(Diagnostic::error(
                            format!(
                                "`{}` is declared more than once in module `{}`",
                                name.name,
                                m.display_name()
                            ),
                            name.span,
                        ));
                    }
                }
            }
        }

        if body.calls.is_empty() {
            diags.push(Diagnostic::warning(
                format!(
                    "parallel module `{}` instantiates no modules",
                    m.display_name()
                ),
                m.span,
            ));
        }

        for call in &body.calls {
            for arg in &call.args {
                if !visible.contains(arg.name.name.as_str()) {
                    diags.push(Diagnostic::error(
                        format!(
                            "stream `{}` passed to `{}` is not declared in module `{}`",
                            arg.name.name,
                            call.module.name,
                            m.display_name()
                        ),
                        arg.name.span,
                    ));
                }
            }
            if let Some(callee) = program.module(&call.module.name) {
                if callee.params.len() != call.args.len() {
                    diags.push(Diagnostic::error(
                        format!(
                            "module `{}` expects {} stream arguments, {} were passed",
                            call.module.name,
                            callee.params.len(),
                            call.args.len()
                        ),
                        call.span,
                    ));
                    continue;
                }
                for (param, arg) in callee.params.iter().zip(&call.args) {
                    if param.out != arg.out {
                        diags.push(Diagnostic::error(
                            format!(
                                "stream argument `{}` of `{}` must {} marked `out` to match parameter `{}`",
                                arg.name.name,
                                call.module.name,
                                if param.out { "be" } else { "not be" },
                                param.name.name
                            ),
                            arg.name.span,
                        ));
                    }
                }
            }
        }

        // Latency constraints must reference declared sources/sinks.
        let source_sink_names: BTreeSet<&str> = body
            .buffers
            .iter()
            .filter_map(|b| match b {
                BufferDecl::Source { name, .. } | BufferDecl::Sink { name, .. } => {
                    Some(name.name.as_str())
                }
                _ => None,
            })
            .collect();
        for l in &body.latencies {
            for endpoint in [&l.subject, &l.reference] {
                if !source_sink_names.contains(endpoint.name.as_str()) {
                    diags.push(Diagnostic::error(
                        format!(
                            "latency constraint endpoint `{}` is not a source or sink declared in module `{}`",
                            endpoint.name,
                            m.display_name()
                        ),
                        endpoint.span,
                    ));
                }
            }
            if l.amount_ms < 0.0 {
                diags.push(Diagnostic::error(
                    "latency constraint amount must be non-negative",
                    l.span,
                ));
            }
        }
    }
}

/// Check sequential bodies: no instantiation of modules, all coordinated
/// functions side-effect free, no writes to input streams and no reads of
/// values that are never produced.
fn check_seq_bodies(program: &Program, registry: &FunctionRegistry, diags: &mut Vec<Diagnostic>) {
    let module_names: BTreeSet<&str> = program
        .modules
        .iter()
        .filter_map(|m| m.name.as_ref())
        .map(|n| n.name.as_str())
        .collect();

    for m in &program.modules {
        let ModuleBody::Seq(body) = &m.body else {
            continue;
        };
        let input_params: BTreeSet<&str> = m.input_params().map(|p| p.name.name.as_str()).collect();
        let mut declared: BTreeSet<String> = m.params.iter().map(|p| p.name.name.clone()).collect();
        for v in &body.vars {
            declared.insert(v.name.name.clone());
        }

        let mut written: BTreeSet<String> = BTreeSet::new();
        let mut reported_unknown: BTreeSet<String> = BTreeSet::new();
        check_stmts(
            &body.stmts,
            m,
            &module_names,
            &input_params,
            registry,
            &mut declared,
            &mut written,
            &mut reported_unknown,
            diags,
        );

        // Reads of names that are neither declared, parameters, nor ever
        // written anywhere in the module are likely mistakes.
        let mut reads = Vec::new();
        collect_reads(&body.stmts, &mut reads);
        for access in reads {
            let name = &access.name.name;
            if !declared.contains(name) && !written.contains(name) {
                diags.push(Diagnostic::error(
                    format!(
                        "`{}` is read in module `{}` but never declared, written or passed as a stream",
                        name,
                        m.display_name()
                    ),
                    access.name.span,
                ));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_stmts(
    stmts: &[Stmt],
    module: &Module,
    module_names: &BTreeSet<&str>,
    input_params: &BTreeSet<&str>,
    registry: &FunctionRegistry,
    declared: &mut BTreeSet<String>,
    written: &mut BTreeSet<String>,
    reported_unknown: &mut BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                check_write_target(target, module, input_params, diags);
                written.insert(target.name.name.clone());
                declared.insert(target.name.name.clone());
                let mut calls = Vec::new();
                value.called_functions(&mut calls);
                for f in calls {
                    check_function(&f, module, module_names, registry, reported_unknown, diags);
                }
            }
            Stmt::Call { func, args, .. } => {
                check_function(
                    func,
                    module,
                    module_names,
                    registry,
                    reported_unknown,
                    diags,
                );
                for arg in args {
                    match arg {
                        Arg::Out(access) => {
                            check_write_target(access, module, input_params, diags);
                            written.insert(access.name.name.clone());
                            declared.insert(access.name.name.clone());
                        }
                        Arg::In(e) => {
                            let mut calls = Vec::new();
                            e.called_functions(&mut calls);
                            for f in calls {
                                check_function(
                                    &f,
                                    module,
                                    module_names,
                                    registry,
                                    reported_unknown,
                                    diags,
                                );
                            }
                        }
                    }
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                cond,
                ..
            } => {
                let mut calls = Vec::new();
                cond.called_functions(&mut calls);
                for f in calls {
                    check_function(&f, module, module_names, registry, reported_unknown, diags);
                }
                check_stmts(
                    then_branch,
                    module,
                    module_names,
                    input_params,
                    registry,
                    declared,
                    written,
                    reported_unknown,
                    diags,
                );
                check_stmts(
                    else_branch,
                    module,
                    module_names,
                    input_params,
                    registry,
                    declared,
                    written,
                    reported_unknown,
                    diags,
                );
            }
            Stmt::Switch { cases, default, .. } => {
                for c in cases {
                    check_stmts(
                        &c.body,
                        module,
                        module_names,
                        input_params,
                        registry,
                        declared,
                        written,
                        reported_unknown,
                        diags,
                    );
                }
                check_stmts(
                    default,
                    module,
                    module_names,
                    input_params,
                    registry,
                    declared,
                    written,
                    reported_unknown,
                    diags,
                );
            }
            Stmt::LoopWhile { body, .. } => {
                check_stmts(
                    body,
                    module,
                    module_names,
                    input_params,
                    registry,
                    declared,
                    written,
                    reported_unknown,
                    diags,
                );
            }
        }
    }
}

fn check_write_target(
    target: &Access,
    module: &Module,
    input_params: &BTreeSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    if input_params.contains(target.name.name.as_str()) {
        diags.push(Diagnostic::error(
            format!(
                "input stream `{}` of module `{}` cannot be written (declare the parameter `out` to write it)",
                target.name.name,
                module.display_name()
            ),
            target.name.span,
        ));
    }
}

fn check_function(
    func: &Ident,
    module: &Module,
    module_names: &BTreeSet<&str>,
    registry: &FunctionRegistry,
    reported_unknown: &mut BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    if module_names.contains(func.name.as_str()) {
        diags.push(Diagnostic::error(
            format!(
                "module `{}` cannot be instantiated from the sequential body of `{}`; modules are only instantiated from `mod par` bodies",
                func.name,
                module.display_name()
            ),
            func.span,
        ));
        return;
    }
    if !registry.is_side_effect_free(&func.name) {
        diags.push(Diagnostic::error(
            format!(
                "function `{}` is not side-effect free and cannot be coordinated by OIL",
                func.name
            ),
            func.span,
        ));
    }
    if !registry.is_known(&func.name) && reported_unknown.insert(func.name.clone()) {
        diags.push(Diagnostic::warning(
            format!(
                "function `{}` is not registered; assuming it is side-effect free with the default response time",
                func.name
            ),
            func.span,
        ));
    }
}

fn collect_reads(stmts: &[Stmt], out: &mut Vec<Access>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { value, .. } => value.reads(out),
            Stmt::Call { args, .. } => {
                for a in args {
                    if let Arg::In(e) = a {
                        e.reads(out);
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                cond.reads(out);
                collect_reads(then_branch, out);
                collect_reads(else_branch, out);
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                scrutinee.reads(out);
                for c in cases {
                    collect_reads(&c.body, out);
                }
                collect_reads(default, out);
            }
            Stmt::LoopWhile { body, cond, .. } => {
                collect_reads(body, out);
                cond.reads(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::registry::FunctionSignature;

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut reg = FunctionRegistry::new();
        for f in ["f", "g", "h", "k", "init"] {
            reg.register(FunctionSignature::pure(f, 1e-6));
        }
        let program = parse_program(src).unwrap();
        let mut diags = Vec::new();
        check(&program, &reg, &mut diags);
        diags
    }

    fn errors(src: &str) -> Vec<String> {
        run(src)
            .into_iter()
            .filter(|d| d.is_error())
            .map(|d| d.message)
            .collect()
    }

    #[test]
    fn duplicate_module_names_rejected() {
        let errs = errors("mod seq A(out int a){ f(out a); } mod seq A(out int a){ f(out a); }");
        assert!(errs.iter().any(|e| e.contains("more than once")));
    }

    #[test]
    fn self_recursion_rejected() {
        let errs = errors("mod par A(int x, out int y){ A(x, out y) }");
        assert!(errs.iter().any(|e| e.contains("recursive")));
    }

    #[test]
    fn deep_recursion_rejected() {
        let errs = errors(
            "mod par A(int x, out int y){ B(x, out y) }
             mod par B(int x, out int y){ C(x, out y) }
             mod par C(int x, out int y){ A(x, out y) }",
        );
        assert!(errs.iter().any(|e| e.contains("recursive")));
    }

    #[test]
    fn acyclic_hierarchy_accepted() {
        let errs = errors(
            "mod seq L(int x, out int y){ loop{ f(x, out y); } while(1); }
             mod par M(int x, out int y){ L(x, out y) }
             mod par N(int x, out int y){ M(x, out y) }",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let errs = errors(
            "mod seq L(int x, out int y){ loop{ f(x, out y); } while(1); }
             mod par M(){ fifo int a, b; L(a) || L(a, out b) }",
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("expects 2 stream arguments")));
    }

    #[test]
    fn direction_mismatch_rejected() {
        let errs = errors(
            "mod seq L(int x, out int y){ loop{ f(x, out y); } while(1); }
             mod par M(){ fifo int a, b; L(out a, b) }",
        );
        assert!(errs.iter().any(|e| e.contains("marked `out`")));
    }

    #[test]
    fn undeclared_stream_argument_rejected() {
        let errs = errors(
            "mod seq L(int x, out int y){ loop{ f(x, out y); } while(1); }
             mod par M(){ fifo int a; L(a, out ghost) }",
        );
        assert!(errs.iter().any(|e| e.contains("ghost")));
    }

    #[test]
    fn module_call_in_seq_body_rejected() {
        let errs = errors(
            "mod seq L(int x, out int y){ loop{ f(x, out y); } while(1); }
             mod seq M(int x, out int y){ loop{ L(x, out y); } while(1); }",
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("cannot be instantiated from the sequential body")));
    }

    #[test]
    fn write_to_input_stream_rejected() {
        let errs = errors("mod seq A(int a, out int b){ loop{ f(out a); f(out b); } while(1); }");
        assert!(errs.iter().any(|e| e.contains("cannot be written")));
    }

    #[test]
    fn read_of_undefined_value_rejected() {
        let errs = errors("mod seq A(out int b){ loop{ f(phantom, out b); } while(1); }");
        assert!(errs.iter().any(|e| e.contains("phantom")));
    }

    #[test]
    fn implicitly_declared_local_accepted() {
        // Fig. 4a of the paper writes `y = g();` without declaring `y`.
        let errs =
            errors("mod seq M(out int x){ if(...){ y = g(); } else { y = h(); } k(y, out x:2); }");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn unknown_function_is_warning_not_error() {
        let diags = run("mod seq A(out int b){ loop{ exotic(out b); } while(1); }");
        assert!(diags
            .iter()
            .any(|d| !d.is_error() && d.message.contains("exotic")));
        assert!(diags.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn latency_endpoints_must_be_sources_or_sinks() {
        let errs = errors(
            "mod seq L(int x, out int y){ loop{ f(x, out y); } while(1); }
             mod par M(){
                source int s = f() @ 1 kHz;
                sink int t = g() @ 1 kHz;
                fifo int q;
                start s 5 ms before q;
                L(s, out t)
             }",
        );
        assert!(errs.iter().any(|e| e.contains("not a source or sink")));
    }

    #[test]
    fn two_anonymous_top_modules_rejected() {
        let errs = errors(
            "mod par { fifo int a; X(out a) }
             mod par { fifo int b; Y(out b) }",
        );
        assert!(errs.iter().any(|e| e.contains("anonymous")));
    }
}
