//! Stream-access rules for sequential module bodies (Section IV-A).
//!
//! * An **output stream** must be written in every while-loop iteration (its
//!   new value becomes visible to other modules at the end of each iteration).
//!   A module whose output stream is never written at all is rejected; a loop
//!   in which it is written only on some control paths gets a warning because
//!   the derived temporal model then over-approximates.
//! * To keep **sources and sinks strictly periodic**, every stream of a module
//!   should be accessed in every top-level while-loop of that module (the
//!   requirement inherited from [5], [22] and used by the Fig. 3/Fig. 9
//!   abstraction). Violations get a warning.

use crate::ast::*;
use crate::span::Diagnostic;
use std::collections::BTreeSet;

/// Run stream-access checks, appending diagnostics to `diags`.
pub fn check(program: &Program, diags: &mut Vec<Diagnostic>) {
    for m in &program.modules {
        let ModuleBody::Seq(body) = &m.body else {
            continue;
        };
        check_outputs_written(m, body, diags);
        check_streams_in_every_loop(m, body, diags);
    }
}

fn check_outputs_written(module: &Module, body: &SeqBody, diags: &mut Vec<Diagnostic>) {
    for p in module.output_params() {
        let name = p.name.name.as_str();
        if !stmts_write(&body.stmts, name) {
            diags.push(Diagnostic::error(
                format!(
                    "output stream `{}` of module `{}` is never written",
                    name,
                    module.display_name()
                ),
                p.name.span,
            ));
            continue;
        }
        // Inside each top-level loop that writes the stream at all, the write
        // should happen on every control path.
        for stmt in &body.stmts {
            if let Stmt::LoopWhile {
                body: loop_body,
                span,
                ..
            } = stmt
            {
                if stmts_write(loop_body, name) && !stmts_write_on_all_paths(loop_body, name) {
                    diags.push(Diagnostic::warning(
                        format!(
                            "output stream `{}` of module `{}` is not written on every control path of this loop; \
                             the derived temporal model assumes it is written every iteration",
                            name,
                            module.display_name()
                        ),
                        *span,
                    ));
                }
            }
        }
    }
}

fn check_streams_in_every_loop(module: &Module, body: &SeqBody, diags: &mut Vec<Diagnostic>) {
    let streams: Vec<&StreamParam> = module.params.iter().collect();
    if streams.is_empty() {
        return;
    }
    let loops: Vec<&Stmt> = body
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::LoopWhile { .. }))
        .collect();
    if loops.len() <= 1 {
        // With a single (or no) loop the bounded-access requirement is
        // trivially handled by the loop's own periodicity constraint.
        return;
    }
    for p in streams {
        let name = p.name.name.as_str();
        for l in &loops {
            let Stmt::LoopWhile {
                body: loop_body,
                span,
                ..
            } = l
            else {
                unreachable!()
            };
            if !stmts_access(loop_body, name) {
                diags.push(Diagnostic::warning(
                    format!(
                        "stream `{}` of module `{}` is not accessed in every while-loop; \
                         sources and sinks connected to it may not be served strictly periodically",
                        name,
                        module.display_name()
                    ),
                    *span,
                ));
            }
        }
    }
}

/// Does any statement in `stmts` (recursively) write `name`?
fn stmts_write(stmts: &[Stmt], name: &str) -> bool {
    stmts.iter().any(|s| stmt_writes(s, name))
}

fn stmt_writes(stmt: &Stmt, name: &str) -> bool {
    match stmt {
        Stmt::Assign { target, .. } => target.name.name == name,
        Stmt::Call { args, .. } => args.iter().any(|a| match a {
            Arg::Out(acc) => acc.name.name == name,
            Arg::In(_) => false,
        }),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => stmts_write(then_branch, name) || stmts_write(else_branch, name),
        Stmt::Switch { cases, default, .. } => {
            cases.iter().any(|c| stmts_write(&c.body, name)) || stmts_write(default, name)
        }
        Stmt::LoopWhile { body, .. } => stmts_write(body, name),
    }
}

/// Is `name` written on **every** control path through `stmts`?
fn stmts_write_on_all_paths(stmts: &[Stmt], name: &str) -> bool {
    stmts.iter().any(|s| stmt_writes_on_all_paths(s, name))
}

fn stmt_writes_on_all_paths(stmt: &Stmt, name: &str) -> bool {
    match stmt {
        Stmt::Assign { target, .. } => target.name.name == name,
        Stmt::Call { args, .. } => args
            .iter()
            .any(|a| matches!(a, Arg::Out(acc) if acc.name.name == name)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            stmts_write_on_all_paths(then_branch, name)
                && stmts_write_on_all_paths(else_branch, name)
        }
        Stmt::Switch { cases, default, .. } => {
            cases
                .iter()
                .all(|c| stmts_write_on_all_paths(&c.body, name))
                && stmts_write_on_all_paths(default, name)
        }
        // A loop body executes at least once under OIL's `loop..while`
        // semantics, so a guaranteed write inside counts.
        Stmt::LoopWhile { body, .. } => stmts_write_on_all_paths(body, name),
    }
}

/// Does any statement in `stmts` (recursively) read or write `name`?
fn stmts_access(stmts: &[Stmt], name: &str) -> bool {
    stmts.iter().any(|s| stmt_accesses(s, name))
}

fn stmt_accesses(stmt: &Stmt, name: &str) -> bool {
    let expr_reads = |e: &Expr| {
        let mut reads = Vec::new();
        e.reads(&mut reads);
        reads.iter().any(|a| a.name.name == name)
    };
    match stmt {
        Stmt::Assign { target, value, .. } => target.name.name == name || expr_reads(value),
        Stmt::Call { args, .. } => args.iter().any(|a| match a {
            Arg::Out(acc) => acc.name.name == name,
            Arg::In(e) => expr_reads(e),
        }),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => expr_reads(cond) || stmts_access(then_branch, name) || stmts_access(else_branch, name),
        Stmt::Switch {
            scrutinee,
            cases,
            default,
            ..
        } => {
            expr_reads(scrutinee)
                || cases.iter().any(|c| stmts_access(&c.body, name))
                || stmts_access(default, name)
        }
        Stmt::LoopWhile { body, cond, .. } => stmts_access(body, name) || expr_reads(cond),
    }
}

/// Collect, per stream name, whether the module writes it anywhere. Exposed
/// for the compiler crate which needs the same classification when building
/// task graphs.
pub fn written_streams(module: &Module) -> BTreeSet<String> {
    let ModuleBody::Seq(body) = &module.body else {
        return BTreeSet::new();
    };
    module
        .params
        .iter()
        .filter(|p| stmts_write(&body.stmts, &p.name.name))
        .map(|p| p.name.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> Vec<Diagnostic> {
        let program = parse_program(src).unwrap();
        let mut diags = Vec::new();
        check(&program, &mut diags);
        diags
    }

    #[test]
    fn output_written_every_iteration_is_clean() {
        let diags = run("mod seq A(int a, out int b){ loop{ f(a, out b); } while(1); }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn output_never_written_is_error() {
        let diags = run("mod seq A(int a, out int b){ loop{ f(a); } while(1); }");
        assert!(diags
            .iter()
            .any(|d| d.is_error() && d.message.contains("never written")));
    }

    #[test]
    fn conditional_output_write_is_warning() {
        let diags =
            run("mod seq A(int a, out int b){ loop{ if(a > 0){ f(a, out b); } } while(1); }");
        assert!(diags
            .iter()
            .any(|d| !d.is_error() && d.message.contains("every control path")));
    }

    #[test]
    fn write_in_both_branches_is_clean() {
        let diags = run(
            "mod seq A(int a, out int b){ loop{ if(a > 0){ f(a, out b); } else { g(a, out b); } } while(1); }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn switch_covering_all_arms_is_clean() {
        let diags = run(
            "mod seq A(int a, out int b){ loop{ switch(a) case 0 { f(a, out b); } default { g(a, out b); } } while(1); }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stream_missing_from_second_loop_is_warning() {
        // Variant of Fig. 9a where stream x is only accessed in the first loop.
        let diags = run("mod seq A(int x, out int o){
                loop{ y = f(x); o = f(x); } while(...);
                loop{ o = g(y); } while(...);
             }");
        assert!(diags
            .iter()
            .any(|d| !d.is_error() && d.message.contains("not accessed in every while-loop")));
    }

    #[test]
    fn fig9a_both_loops_access_stream_is_clean_for_x() {
        let diags = run("mod seq A(int x, out int o){
                loop{ y = f(x); o = f(y); } while(...);
                loop{ o = g(x, y); } while(...);
             }");
        assert!(
            !diags
                .iter()
                .any(|d| d.message.contains("`x`") && d.message.contains("not accessed")),
            "{diags:?}"
        );
    }

    #[test]
    fn written_streams_classification() {
        let p =
            parse_program("mod seq A(int a, out int b){ loop{ f(a, out b); } while(1); }").unwrap();
        let w = written_streams(p.module("A").unwrap());
        assert!(w.contains("b"));
        assert!(!w.contains("a"));
    }

    #[test]
    fn prologue_write_outside_loop_counts_as_written() {
        // Fig. 2c module B writes 4 initial values before the loop.
        let diags =
            run("mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }");
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }
}
