//! Front end for the OIL hierarchical coordination language.
//!
//! OIL (as introduced by Geuns, Hausmans and Bekooij, *"Hierarchical
//! Programming Language for Modal Multi-Rate Real-Time Stream Processing
//! Applications"*, ICPP Workshops 2014) is a coordination language in which a
//! **parallel specification** of concurrently executing *modules* nests a
//! **sequential specification** of each module body, which in turn coordinates
//! side-effect-free functions.
//!
//! This crate provides:
//!
//! * a lexer and recursive-descent parser for the core syntax of the paper's
//!   Figure 5 (plus the extensions used by the paper's own examples: anonymous
//!   top-level `mod par { .. }` blocks, frequency units, array slices and the
//!   colon multi-rate access notation),
//! * a typed abstract syntax tree ([`ast`]),
//! * semantic analysis ([`sema`]) that enforces the restrictions making OIL
//!   *not* Turing complete (no recursion, no pointers, no dynamic memory) and
//!   the stream-access rules of Section IV of the paper,
//! * a pretty printer ([`pretty`]) able to round-trip parsed programs, and
//! * a function registry describing the (side-effect-free) C/C++-style
//!   functions a program coordinates.
//!
//! # Quick example
//!
//! ```
//! use oil_lang::parse_program;
//!
//! let src = r#"
//! mod seq A(out int a, int b) {
//!     loop { f(out a:3, b:3); } while(1);
//! }
//! mod seq B(out int c, int d) {
//!     init(out c:4);
//!     loop { g(out c:2, d:2); } while(1);
//! }
//! mod par C() {
//!     fifo int x, y;
//!     A(out x, y) || B(out y, x)
//! }
//! "#;
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.modules.len(), 3);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod registry;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::Program;
pub use parser::{parse_program, Parser};
pub use registry::{FunctionRegistry, FunctionSignature};
pub use sema::{analyze, AnalyzedProgram, SemaError};
pub use span::{Diagnostic, Severity, Span};

/// Parse and semantically analyse an OIL program in one call.
///
/// This is the convenience entry point used by the compiler pipeline: it
/// parses `source`, runs all semantic checks with the given function
/// `registry` and returns the analysed program, or the list of diagnostics
/// explaining why the program is rejected.
pub fn frontend(
    source: &str,
    registry: &FunctionRegistry,
) -> Result<AnalyzedProgram, Vec<Diagnostic>> {
    let program = parse_program(source).map_err(|d| vec![d])?;
    analyze(&program, registry).map_err(|e| e.diagnostics)
}
