//! Source positions, spans and diagnostics.
//!
//! Every token and AST node carries a [`Span`] so that semantic errors can be
//! reported against the original OIL source text.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into the source text, together with
/// the 1-based line/column of its start for human-readable reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub column: u32,
}

impl Span {
    /// Create a new span.
    pub fn new(start: usize, end: usize, line: u32, column: u32) -> Self {
        Span {
            start,
            end,
            line,
            column,
        }
    }

    /// A span covering nothing, used for synthesised nodes.
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (first, last) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: first.start,
            end: last.end.max(first.end),
            line: first.line,
            column: first.column,
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Severity of a diagnostic message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// The program is accepted but may not behave as intended.
    Warning,
    /// Informational note attached to another diagnostic.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// A single diagnostic message produced by the lexer, parser or semantic
/// analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How severe the problem is.
    pub severity: Severity,
    /// Human readable description.
    pub message: String,
    /// Location in the source text.
    pub span: Span,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// True if this diagnostic rejects the program.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.severity, self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Tracks line starts so byte offsets can be converted back to line/column
/// pairs, e.g. when a later pass wants to point at a location it only knows by
/// offset.
#[derive(Debug, Clone)]
pub struct SourceMap {
    line_starts: Vec<usize>,
    len: usize,
}

impl SourceMap {
    /// Build a source map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0usize];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap {
            line_starts,
            len: source.len(),
        }
    }

    /// Convert a byte offset to a `(line, column)` pair (both 1-based).
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line_idx] + 1;
        (line_idx as u32 + 1, col as u32)
    }

    /// Number of lines in the mapped source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7, 1, 4);
        let b = Span::new(10, 14, 2, 2);
        let m = a.merge(b);
        assert_eq!(m.start, 3);
        assert_eq!(m.end, 14);
        assert_eq!(m.line, 1);
        let m2 = b.merge(a);
        assert_eq!(m2, m);
    }

    #[test]
    fn span_merge_nested() {
        let outer = Span::new(0, 20, 1, 1);
        let inner = Span::new(5, 10, 1, 6);
        let m = outer.merge(inner);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 20);
    }

    #[test]
    fn span_len_and_empty() {
        assert!(Span::synthetic().is_empty());
        assert_eq!(Span::new(2, 6, 1, 3).len(), 4);
    }

    #[test]
    fn source_map_line_col() {
        let src = "abc\ndef\n\nxyz";
        let map = SourceMap::new(src);
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(2), (1, 3));
        assert_eq!(map.line_col(4), (2, 1));
        assert_eq!(map.line_col(8), (3, 1));
        assert_eq!(map.line_col(9), (4, 1));
        assert_eq!(map.line_col(100), (4, 4));
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic::error("unexpected token", Span::new(0, 1, 3, 9));
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("3:9"));
        assert!(s.contains("unexpected token"));
        assert!(d.is_error());
        assert!(!Diagnostic::warning("w", Span::synthetic()).is_error());
    }
}
