//! Pretty printer for OIL ASTs.
//!
//! The printer produces canonical source text that parses back to an
//! equivalent AST, which is exercised by round-trip tests and property tests.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program as OIL source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, m) in program.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_module(m, &mut out);
    }
    out
}

/// Render a single module definition.
pub fn print_module(module: &Module, out: &mut String) {
    let _ = write!(out, "{}", module.kind);
    if let Some(name) = &module.name {
        let _ = write!(out, " {name}");
    }
    out.push('(');
    for (i, p) in module.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if p.out {
            out.push_str("out ");
        }
        let _ = write!(out, "{} {}", p.ty, p.name);
    }
    out.push_str(") {\n");
    match &module.body {
        ModuleBody::Par(body) => print_par_body(body, out),
        ModuleBody::Seq(body) => print_seq_body(body, out),
    }
    out.push_str("}\n");
}

fn print_par_body(body: &ParBody, out: &mut String) {
    for b in &body.buffers {
        match b {
            BufferDecl::Fifo { ty, names, .. } => {
                let names: Vec<&str> = names.iter().map(|n| n.name.as_str()).collect();
                let _ = writeln!(out, "    fifo {} {};", ty, names.join(", "));
            }
            BufferDecl::Source {
                ty,
                name,
                func,
                rate,
                ..
            } => {
                let _ = writeln!(out, "    source {ty} {name} = {func}() @ {} Hz;", rate.hz);
            }
            BufferDecl::Sink {
                ty,
                name,
                func,
                rate,
                ..
            } => {
                let _ = writeln!(out, "    sink {ty} {name} = {func}() @ {} Hz;", rate.hz);
            }
        }
    }
    for l in &body.latencies {
        let rel = match l.relation {
            LatencyRelation::After => "after",
            LatencyRelation::Before => "before",
        };
        let _ = writeln!(
            out,
            "    start {} {} ms {} {};",
            l.subject, l.amount_ms, rel, l.reference
        );
    }
    if !body.calls.is_empty() {
        out.push_str("    ");
        for (i, c) in body.calls.iter().enumerate() {
            if i > 0 {
                out.push_str(" || ");
            }
            print_module_call(c, out);
        }
        out.push('\n');
    }
}

fn print_module_call(call: &ModuleCall, out: &mut String) {
    let _ = write!(out, "{}(", call.module);
    for (i, a) in call.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if a.out {
            out.push_str("out ");
        }
        let _ = write!(out, "{}", a.name);
    }
    out.push(')');
}

fn print_seq_body(body: &SeqBody, out: &mut String) {
    for v in &body.vars {
        match v.array_len {
            Some(n) => {
                let _ = writeln!(out, "    {} {}[{}];", v.ty, v.name, n);
            }
            None => {
                let _ = writeln!(out, "    {} {};", v.ty, v.name);
            }
        }
    }
    for s in &body.stmts {
        print_stmt(s, 1, out);
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Assign { target, value, .. } => {
            let _ = write!(out, "{} = {};", print_access(target), print_expr(value));
            out.push('\n');
        }
        Stmt::Call { func, args, .. } => {
            let args: Vec<String> = args
                .iter()
                .map(|a| match a {
                    Arg::In(e) => print_expr(e),
                    Arg::Out(acc) => format!("out {}", print_access(acc)),
                })
                .collect();
            let _ = writeln!(out, "{}({});", func, args.join(", "));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let _ = writeln!(out, "if({}) {{", print_expr(cond));
            for s in then_branch {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_branch {
                    print_stmt(s, level + 1, out);
                }
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
            ..
        } => {
            let _ = writeln!(out, "switch({})", print_expr(scrutinee));
            for c in cases {
                indent(level, out);
                let _ = writeln!(out, "case {} {{", c.value);
                for s in &c.body {
                    print_stmt(s, level + 1, out);
                }
                indent(level, out);
                out.push_str("}\n");
            }
            indent(level, out);
            out.push_str("default {\n");
            for s in default {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::LoopWhile { body, cond, .. } => {
            out.push_str("loop {\n");
            for s in body {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            let _ = writeln!(out, "}} while({});", print_expr(cond));
        }
    }
}

fn print_access(a: &Access) -> String {
    if let Some(n) = a.rate {
        format!("{}:{}", a.name, n)
    } else if let Some((lo, hi)) = a.slice {
        format!("{}[{}:{}]", a.name, lo, hi)
    } else {
        a.name.name.clone()
    }
}

/// Render an expression as source text (fully parenthesised for binary
/// operators, so precedence is preserved on re-parse).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(n, _) => n.to_string(),
        Expr::Float(x, _) => format!("{x:?}"),
        Expr::Var(a, _) => print_access(a),
        Expr::Call { func, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{}({})", func, args.join(", "))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", print_expr(lhs), op.as_str(), print_expr(rhs))
        }
        Expr::Not(inner, _) => format!("!{}", print_expr(inner)),
        Expr::Opaque(_) => "...".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Strip spans so structurally identical ASTs compare equal after a
    /// round trip through the printer.
    fn normalize(p: &Program) -> String {
        // Printing twice is a convenient structural normal form: if
        // print(parse(print(x))) == print(x) the printer/parser pair is
        // consistent for x.
        print_program(p)
    }

    #[test]
    fn round_trip_rate_conversion() {
        let src = r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = normalize(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(normalize(&p2), printed);
        assert_eq!(p1.modules.len(), p2.modules.len());
    }

    #[test]
    fn round_trip_control_statements() {
        let src = r#"
            mod seq M(int a, out int x){
                int y;
                if(a > 3 && a < 10){ y = g(a); } else { y = h(a * 2 + 1); }
                switch(a) case 0 { y = g(a); } default { y = h(a); }
                loop{ k(y, out x:2); } while(...);
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = normalize(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(normalize(&p2), printed);
    }

    #[test]
    fn round_trip_sources_sinks_latency() {
        let src = r#"
            mod par D(){
                source int x = src() @ 1000 Hz;
                sink int y = snk() @ 1000 Hz;
                start x 5 ms before y;
                A(x, out y)
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = normalize(&p1);
        assert!(printed.contains("source int x = src() @ 1000 Hz;"));
        assert!(printed.contains("start x 5 ms before y;"));
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(normalize(&p2), printed);
    }

    #[test]
    fn expr_printer_parenthesises() {
        let mut parser = crate::parser::Parser::new("a + b * c").unwrap();
        let e = parser.parse_expr().unwrap();
        assert_eq!(print_expr(&e), "(a + (b * c))");
    }

    #[test]
    fn round_trip_array_slices() {
        let src = r#"
            mod seq S(){
                int x[6], y[6];
                init(out y[0:3]);
                loop{ f(out x[0:2], y[0:2]); } while(1);
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = normalize(&p1);
        assert!(printed.contains("y[0:3]"));
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(normalize(&p2), printed);
    }
}
