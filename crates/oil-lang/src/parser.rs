//! Recursive-descent parser for OIL programs.
//!
//! The parser implements the core grammar of the paper's Figure 5 together
//! with the extensions used by the paper's own listings (Figures 2, 4, 6, 9
//! and 11): anonymous top-level `mod par { .. }` blocks, multiple FIFO names
//! per declaration, array variable declarations and slices, frequency units
//! (`Hz`, `kHz`, `MHz`, `GHz`, `S/s` spellings) and the `...` placeholder
//! condition.

use crate::ast::*;
use crate::lexer::tokenize;
use crate::span::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// A recursive-descent / Pratt parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse an OIL program from source text.
pub fn parse_program(source: &str) -> Result<Program, Diagnostic> {
    Parser::new(source)?.parse()
}

impl Parser {
    /// Create a parser for `source`, running the lexer eagerly.
    pub fn new(source: &str) -> Result<Self, Diagnostic> {
        Ok(Parser {
            tokens: tokenize(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.check(&kind) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                format!("expected {kind}, found {}", self.peek_kind()),
                self.peek().span,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<Ident, Diagnostic> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Ident::new(name, t.span))
            }
            other => Err(Diagnostic::error(
                format!("expected identifier, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn expect_int(&mut self) -> Result<(i64, Span), Diagnostic> {
        match *self.peek_kind() {
            TokenKind::Int(n) => {
                let t = self.bump();
                Ok((n, t.span))
            }
            ref other => Err(Diagnostic::error(
                format!("expected integer, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn expect_number(&mut self) -> Result<(f64, Span), Diagnostic> {
        match *self.peek_kind() {
            TokenKind::Int(n) => {
                let t = self.bump();
                Ok((n as f64, t.span))
            }
            TokenKind::Float(x) => {
                let t = self.bump();
                Ok((x, t.span))
            }
            ref other => Err(Diagnostic::error(
                format!("expected number, found {other}"),
                self.peek().span,
            )),
        }
    }

    /// Parse a full program: a sequence of module definitions.
    pub fn parse(&mut self) -> Result<Program, Diagnostic> {
        let mut modules = Vec::new();
        while !self.check(&TokenKind::Eof) {
            modules.push(self.parse_module()?);
        }
        if modules.is_empty() {
            return Err(Diagnostic::error(
                "a program must contain at least one module",
                Span::synthetic(),
            ));
        }
        Ok(Program { modules })
    }

    fn parse_module(&mut self) -> Result<Module, Diagnostic> {
        let start = self.expect(TokenKind::Mod)?.span;
        let kind = if self.eat(&TokenKind::Par) {
            ModuleKind::Par
        } else if self.eat(&TokenKind::Seq) {
            ModuleKind::Seq
        } else {
            return Err(Diagnostic::error(
                format!(
                    "expected `par` or `seq` after `mod`, found {}",
                    self.peek_kind()
                ),
                self.peek().span,
            ));
        };

        // Name and parameter list are optional: the top module may be an
        // anonymous `mod par { .. }` block (Fig. 11 of the paper).
        let name = if let TokenKind::Ident(_) = self.peek_kind() {
            Some(self.expect_ident()?)
        } else {
            None
        };
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !self.check(&TokenKind::RParen) {
                loop {
                    let out = self.eat(&TokenKind::Out);
                    let ty = self.expect_ident()?;
                    let pname = self.expect_ident()?;
                    params.push(StreamParam {
                        out,
                        ty,
                        name: pname,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }

        self.expect(TokenKind::LBrace)?;
        let body = match kind {
            ModuleKind::Par => ModuleBody::Par(self.parse_par_body()?),
            ModuleKind::Seq => ModuleBody::Seq(self.parse_seq_body()?),
        };
        let end = self.expect(TokenKind::RBrace)?.span;

        Ok(Module {
            name,
            kind,
            params,
            body,
            span: start.merge(end),
        })
    }

    // ---- parallel bodies -------------------------------------------------

    fn parse_par_body(&mut self) -> Result<ParBody, Diagnostic> {
        let mut buffers = Vec::new();
        let mut latencies = Vec::new();
        let mut calls = Vec::new();

        loop {
            match self.peek_kind() {
                TokenKind::Fifo => buffers.push(self.parse_fifo_decl()?),
                TokenKind::Source => buffers.push(self.parse_source_sink(true)?),
                TokenKind::Sink => buffers.push(self.parse_source_sink(false)?),
                TokenKind::Start => latencies.push(self.parse_latency()?),
                TokenKind::Ident(_) => {
                    // Parallel composition of module instantiations.
                    calls.push(self.parse_module_call()?);
                    while self.eat(&TokenKind::ParallelBar) {
                        calls.push(self.parse_module_call()?);
                    }
                    // Optional trailing semicolon after the composition.
                    self.eat(&TokenKind::Semicolon);
                }
                TokenKind::RBrace => break,
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "expected a buffer declaration, latency constraint or module \
                             instantiation in parallel module body, found {other}"
                        ),
                        self.peek().span,
                    ))
                }
            }
        }

        Ok(ParBody {
            buffers,
            latencies,
            calls,
        })
    }

    fn parse_fifo_decl(&mut self) -> Result<BufferDecl, Diagnostic> {
        let start = self.expect(TokenKind::Fifo)?.span;
        let ty = self.expect_ident()?;
        let mut names = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.expect_ident()?);
        }
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(BufferDecl::Fifo {
            ty,
            names,
            span: start.merge(end),
        })
    }

    fn parse_source_sink(&mut self, is_source: bool) -> Result<BufferDecl, Diagnostic> {
        let start = self.bump().span; // `source` or `sink`
        let ty = self.expect_ident()?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let func = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::At)?;
        let rate = self.parse_frequency()?;
        let end = self.expect(TokenKind::Semicolon)?.span;
        let span = start.merge(end);
        Ok(if is_source {
            BufferDecl::Source {
                ty,
                name,
                func,
                rate,
                span,
            }
        } else {
            BufferDecl::Sink {
                ty,
                name,
                func,
                rate,
                span,
            }
        })
    }

    fn parse_frequency(&mut self) -> Result<Frequency, Diagnostic> {
        let (value, span) = self.expect_number()?;
        // Optional unit identifier: Hz, kHz, MHz, GHz; also accept the
        // sample-rate spellings used informally in the paper (`MS/s`, `kS/s`).
        let mut multiplier = 1.0;
        if let TokenKind::Ident(unit) = self.peek_kind().clone() {
            let mult = match unit.as_str() {
                "Hz" | "hz" | "S" => Some(1.0),
                "kHz" | "KHz" | "khz" | "kS" => Some(1e3),
                "MHz" | "mhz" | "MS" => Some(1e6),
                "GHz" | "ghz" | "GS" => Some(1e9),
                _ => None,
            };
            if let Some(m) = mult {
                multiplier = m;
                self.bump();
                // Swallow a `/ s` suffix for sample-rate spellings.
                if self.check(&TokenKind::Slash) {
                    self.bump();
                    if matches!(self.peek_kind(), TokenKind::Ident(s) if s == "s") {
                        self.bump();
                    }
                }
            }
        }
        let hz = value * multiplier;
        if hz <= 0.0 {
            return Err(Diagnostic::error("frequency must be positive", span));
        }
        Ok(Frequency::from_hz(hz))
    }

    fn parse_latency(&mut self) -> Result<LatencyConstraint, Diagnostic> {
        let start = self.expect(TokenKind::Start)?.span;
        let subject = self.expect_ident()?;
        let (amount, _) = self.expect_number()?;
        // Optional time unit, defaulting to milliseconds as in the grammar.
        let mut amount_ms = amount;
        if let TokenKind::Ident(unit) = self.peek_kind().clone() {
            let scale = match unit.as_str() {
                "ms" => Some(1.0),
                "us" => Some(1e-3),
                "ns" => Some(1e-6),
                "s" => Some(1e3),
                _ => None,
            };
            if let Some(s) = scale {
                amount_ms = amount * s;
                self.bump();
            }
        }
        let relation = if self.eat(&TokenKind::After) {
            LatencyRelation::After
        } else if self.eat(&TokenKind::Before) {
            LatencyRelation::Before
        } else {
            return Err(Diagnostic::error(
                format!("expected `after` or `before`, found {}", self.peek_kind()),
                self.peek().span,
            ));
        };
        let reference = self.expect_ident()?;
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(LatencyConstraint {
            subject,
            amount_ms,
            relation,
            reference,
            span: start.merge(end),
        })
    }

    fn parse_module_call(&mut self) -> Result<ModuleCall, Diagnostic> {
        let module = self.expect_ident()?;
        let start = module.span;
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                let out = self.eat(&TokenKind::Out);
                let name = self.expect_ident()?;
                args.push(CallArg { out, name });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RParen)?.span;
        Ok(ModuleCall {
            module,
            args,
            span: start.merge(end),
        })
    }

    // ---- sequential bodies -----------------------------------------------

    fn parse_seq_body(&mut self) -> Result<SeqBody, Diagnostic> {
        let mut vars = Vec::new();
        let mut stmts = Vec::new();

        loop {
            match self.peek_kind() {
                TokenKind::RBrace => break,
                TokenKind::Ident(_) if matches!(self.peek_ahead(1), TokenKind::Ident(_)) => {
                    // `T x;` or `T x[6], y[6];` — a variable declaration.
                    vars.extend(self.parse_var_decl()?);
                }
                _ => stmts.push(self.parse_stmt()?),
            }
        }

        Ok(SeqBody { vars, stmts })
    }

    fn parse_var_decl(&mut self) -> Result<Vec<VarDecl>, Diagnostic> {
        let ty = self.expect_ident()?;
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mut array_len = None;
            let mut span = ty.span.merge(name.span);
            if self.eat(&TokenKind::LBracket) {
                let (n, nspan) = self.expect_int()?;
                if n <= 0 {
                    return Err(Diagnostic::error("array length must be positive", nspan));
                }
                array_len = Some(n as u64);
                span = span.merge(self.expect(TokenKind::RBracket)?.span);
            }
            decls.push(VarDecl {
                ty: ty.clone(),
                name,
                array_len,
                span,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(decls)
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek_kind().clone() {
            TokenKind::If => self.parse_if(),
            TokenKind::Switch => self.parse_switch(),
            TokenKind::Loop => self.parse_loop(),
            TokenKind::Ident(_) => {
                // Either an assignment `x = e;` / `x:2 = e;` or a call `F(..);`
                if matches!(self.peek_ahead(1), TokenKind::LParen) {
                    self.parse_call_stmt()
                } else {
                    self.parse_assign()
                }
            }
            other => Err(Diagnostic::error(
                format!("expected a statement, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::If)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.parse_block()?;
        let mut else_branch = Vec::new();
        let mut end = self.tokens[self.pos - 1].span;
        if self.eat(&TokenKind::Else) {
            if self.check(&TokenKind::If) {
                // `else if` sugar: wrap the nested if in a single-statement block.
                let nested = self.parse_if()?;
                end = nested.span();
                else_branch.push(nested);
            } else {
                else_branch = self.parse_block()?;
                end = self.tokens[self.pos - 1].span;
            }
        }
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span: start.merge(end),
        })
    }

    fn parse_switch(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Switch)?.span;
        self.expect(TokenKind::LParen)?;
        let scrutinee = self.parse_expr()?;
        self.expect(TokenKind::RParen)?;
        let mut cases = Vec::new();
        while self.check(&TokenKind::Case) {
            let cstart = self.bump().span;
            let (value, _) = self.expect_int()?;
            let body = self.parse_block()?;
            let cend = self.tokens[self.pos - 1].span;
            cases.push(Case {
                value,
                body,
                span: cstart.merge(cend),
            });
        }
        self.expect(TokenKind::Default)?;
        let default = self.parse_block()?;
        let end = self.tokens[self.pos - 1].span;
        Ok(Stmt::Switch {
            scrutinee,
            cases,
            default,
            span: start.merge(end),
        })
    }

    fn parse_loop(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Loop)?.span;
        let body = self.parse_block()?;
        self.expect(TokenKind::While)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        let end = self.expect(TokenKind::RParen)?.span;
        self.eat(&TokenKind::Semicolon);
        Ok(Stmt::LoopWhile {
            body,
            cond,
            span: start.merge(end),
        })
    }

    fn parse_call_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let func = self.expect_ident()?;
        let start = func.span;
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                if self.eat(&TokenKind::Out) {
                    args.push(Arg::Out(self.parse_access()?));
                } else {
                    args.push(Arg::In(self.parse_expr()?));
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(Stmt::Call {
            func,
            args,
            span: start.merge(end),
        })
    }

    fn parse_assign(&mut self) -> Result<Stmt, Diagnostic> {
        let target = self.parse_access()?;
        let start = target.name.span;
        self.expect(TokenKind::Assign)?;
        let value = self.parse_expr()?;
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(Stmt::Assign {
            target,
            value,
            span: start.merge(end),
        })
    }

    fn parse_access(&mut self) -> Result<Access, Diagnostic> {
        let name = self.expect_ident()?;
        let mut access = Access::simple(name);
        if self.eat(&TokenKind::Colon) {
            let (n, nspan) = self.expect_int()?;
            if n <= 0 {
                return Err(Diagnostic::error("access rate must be positive", nspan));
            }
            access.rate = Some(n as u64);
        } else if self.eat(&TokenKind::LBracket) {
            let (lo, _) = self.expect_int()?;
            self.expect(TokenKind::Colon)?;
            let (hi, hspan) = self.expect_int()?;
            self.expect(TokenKind::RBracket)?;
            if lo < 0 || hi < lo {
                return Err(Diagnostic::error("invalid slice bounds", hspan));
            }
            access.slice = Some((lo as u64, hi as u64));
        }
        Ok(access)
    }

    // ---- expressions -----------------------------------------------------

    /// Parse an expression (public so tests and tools can parse fragments).
    pub fn parse_expr(&mut self) -> Result<Expr, Diagnostic> {
        self.parse_expr_bp(0)
    }

    fn parse_expr_bp(&mut self, min_bp: u8) -> Result<Expr, Diagnostic> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::AndAnd => BinOp::And,
                _ => break,
            };
            let bp = op.precedence();
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.parse_expr_bp(bp + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek_kind().clone() {
            TokenKind::Int(n) => {
                let t = self.bump();
                Ok(Expr::Int(n, t.span))
            }
            TokenKind::Float(x) => {
                let t = self.bump();
                Ok(Expr::Float(x, t.span))
            }
            TokenKind::Ellipsis => {
                let t = self.bump();
                Ok(Expr::Opaque(t.span))
            }
            TokenKind::Minus => {
                let t = self.bump();
                let inner = self.parse_primary()?;
                let span = t.span.merge(inner.span());
                Ok(Expr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(Expr::Int(0, t.span)),
                    rhs: Box::new(inner),
                    span,
                })
            }
            TokenKind::Not => {
                let t = self.bump();
                let inner = self.parse_primary()?;
                let span = t.span.merge(inner.span());
                Ok(Expr::Not(Box::new(inner), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) => {
                if matches!(self.peek_ahead(1), TokenKind::LParen) {
                    let func = self.expect_ident()?;
                    let start = func.span;
                    self.expect(TokenKind::LParen)?;
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::Call {
                        func,
                        args,
                        span: start.merge(end),
                    })
                } else {
                    let access = self.parse_access()?;
                    let span = access.name.span;
                    Ok(Expr::Var(access, span))
                }
            }
            other => Err(Diagnostic::error(
                format!("expected an expression, found {other}"),
                self.peek().span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2C: &str = r#"
        mod seq A(out int a, int b){
            loop{ f(out a:3, b:3); } while(1);
        }
        mod seq B(out int c, int d){
            init(out c:4);
            loop{ g(out c:2, d:2); } while(1);
        }
        mod par C(){
            fifo int x, y;
            A(out x, y) || B(out y, x)
        }
    "#;

    #[test]
    fn parse_fig2c_rate_conversion() {
        let p = parse_program(FIG2C).unwrap();
        assert_eq!(p.modules.len(), 3);
        let a = p.module("A").unwrap();
        assert_eq!(a.kind, ModuleKind::Seq);
        assert_eq!(a.params.len(), 2);
        assert!(a.params[0].out);
        assert!(!a.params[1].out);
        let c = p.module("C").unwrap();
        assert_eq!(c.kind, ModuleKind::Par);
        match &c.body {
            ModuleBody::Par(b) => {
                assert_eq!(b.calls.len(), 2);
                assert_eq!(b.buffers.len(), 1);
                match &b.buffers[0] {
                    BufferDecl::Fifo { names, .. } => assert_eq!(names.len(), 2),
                    _ => panic!("expected fifo"),
                }
            }
            _ => panic!("expected parallel body"),
        }
        assert_eq!(p.top_module().unwrap().display_name(), "C");
    }

    #[test]
    fn parse_fig2b_sequential_schedule() {
        let src = r#"
            mod seq Sched(){
                int x[6], y[6];
                init(out y[0:3]);
                loop{
                    f(out x[0:2], y[0:2]);
                    g(out y[4:5], x[0:1]);
                    f(out x[3:5], y[3:5]);
                    g(out y[0:1], x[2:3]);
                    g(out y[2:3], x[4:5]);
                } while(1);
            }
        "#;
        let p = parse_program(src).unwrap();
        let m = p.module("Sched").unwrap();
        match &m.body {
            ModuleBody::Seq(b) => {
                assert_eq!(b.vars.len(), 2);
                assert_eq!(b.vars[0].array_len, Some(6));
                assert_eq!(b.stmts.len(), 2);
                match &b.stmts[1] {
                    Stmt::LoopWhile { body, cond, .. } => {
                        assert_eq!(body.len(), 5);
                        assert!(cond.is_always_true());
                    }
                    _ => panic!("expected loop"),
                }
            }
            _ => panic!("expected sequential body"),
        }
    }

    #[test]
    fn parse_fig4a_modal_module() {
        let src = r#"
            mod seq M(out int x){
                if(...){ y = g(); }
                else { y = h(); }
                k(y, out x:2);
            }
        "#;
        let p = parse_program(src).unwrap();
        let m = p.module("M").unwrap();
        match &m.body {
            ModuleBody::Seq(b) => {
                assert_eq!(b.stmts.len(), 2);
                match &b.stmts[0] {
                    Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        assert!(matches!(cond, Expr::Opaque(_)));
                        assert_eq!(then_branch.len(), 1);
                        assert_eq!(else_branch.len(), 1);
                    }
                    _ => panic!("expected if"),
                }
                match &b.stmts[1] {
                    Stmt::Call { func, args, .. } => {
                        assert_eq!(func.name, "k");
                        assert_eq!(args.len(), 2);
                        assert!(args[1].is_out());
                        match &args[1] {
                            Arg::Out(a) => assert_eq!(a.rate, Some(2)),
                            _ => unreachable!(),
                        }
                    }
                    _ => panic!("expected call"),
                }
            }
            _ => panic!("expected sequential body"),
        }
    }

    #[test]
    fn parse_fig6_source_sink_latency() {
        let src = r#"
            mod par A(int a, out int b){
                fifo int z;
                B(a, out z) || C(a, z, out b)
            }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                start x 5 ms before y;
                A(x, out y)
            }
        "#;
        let p = parse_program(src).unwrap();
        let d = p.module("D").unwrap();
        match &d.body {
            ModuleBody::Par(b) => {
                assert_eq!(b.buffers.len(), 2);
                assert_eq!(b.latencies.len(), 1);
                assert_eq!(b.latencies[0].amount_ms, 5.0);
                assert_eq!(b.latencies[0].relation, LatencyRelation::Before);
                match &b.buffers[0] {
                    BufferDecl::Source { rate, func, .. } => {
                        assert_eq!(rate.hz, 1000.0);
                        assert_eq!(func.name, "src");
                    }
                    _ => panic!("expected source"),
                }
                assert_eq!(b.calls.len(), 1);
                assert_eq!(b.calls[0].args.len(), 2);
                assert!(b.calls[0].args[1].out);
            }
            _ => panic!("expected parallel body"),
        }
    }

    #[test]
    fn parse_fig9a_two_while_loops() {
        let src = r#"
            mod seq A(int x){
                loop{ y = f(x); } while(...);
                loop{ g(x, y); } while(...);
            }
        "#;
        let p = parse_program(src).unwrap();
        let m = p.module("A").unwrap();
        match &m.body {
            ModuleBody::Seq(b) => {
                assert_eq!(b.stmts.len(), 2);
                assert!(b.stmts.iter().all(|s| matches!(s, Stmt::LoopWhile { .. })));
            }
            _ => panic!("expected seq body"),
        }
    }

    #[test]
    fn parse_anonymous_top_module() {
        let src = r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par{
                fifo sample vid;
                source sample rf = receiveRF() @ 6.4 MHz;
                sink sample screen = display() @ 4 MHz;
                start screen 0 ms after speakers;
                W(rf, out vid)
            }
        "#;
        let p = parse_program(src).unwrap();
        let top = p.top_module().unwrap();
        assert!(top.name.is_none());
        assert_eq!(top.display_name(), "<top>");
        match &top.body {
            ModuleBody::Par(b) => {
                assert_eq!(b.buffers.len(), 3);
                match &b.buffers[1] {
                    BufferDecl::Source { rate, .. } => assert_eq!(rate.hz, 6.4e6),
                    _ => panic!("expected source"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_switch_statement() {
        let src = r#"
            mod seq S(int a, out int b){
                switch(a) case 0 { f(a, out b); } case 1 { g(a, out b); } default { h(a, out b); }
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.module("S").unwrap().body {
            ModuleBody::Seq(b) => match &b.stmts[0] {
                Stmt::Switch { cases, default, .. } => {
                    assert_eq!(cases.len(), 2);
                    assert_eq!(cases[0].value, 0);
                    assert_eq!(cases[1].value, 1);
                    assert_eq!(default.len(), 1);
                }
                _ => panic!("expected switch"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_expression_precedence() {
        let mut p = Parser::new("a + b * c - d / 2").unwrap();
        let e = p.parse_expr().unwrap();
        // Expect ((a + (b*c)) - (d/2))
        match e {
            Expr::Binary {
                op: BinOp::Sub,
                lhs,
                rhs,
                ..
            } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Add, .. }));
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Div, .. }));
            }
            _ => panic!("unexpected parse"),
        }
    }

    #[test]
    fn parse_else_if_chain() {
        let src = r#"
            mod seq M(int a, out int b){
                if(a == 0){ f(a, out b); } else if(a == 1){ g(a, out b); } else { h(a, out b); }
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.module("M").unwrap().body {
            ModuleBody::Seq(b) => match &b.stmts[0] {
                Stmt::If { else_branch, .. } => {
                    assert_eq!(else_branch.len(), 1);
                    assert!(matches!(else_branch[0], Stmt::If { .. }));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn error_on_missing_semicolon() {
        let src = "mod seq A(out int a){ f(out a) }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn error_on_control_in_par_body() {
        // Control statements are not allowed in the parallel specification;
        // they do not even parse there.
        let src = "mod par A(){ if(1){ } }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn error_on_zero_rate_access() {
        let src = "mod seq A(out int a){ f(out a:0); }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn error_on_empty_program() {
        assert!(parse_program("").is_err());
    }

    #[test]
    fn error_on_bad_module_kind() {
        assert!(parse_program("mod foo A(){}").is_err());
    }

    #[test]
    fn frequency_units() {
        for (text, hz) in [
            ("@ 1 Hz", 1.0),
            ("@ 2 kHz", 2e3),
            ("@ 6.4 MHz", 6.4e6),
            ("@ 1 GHz", 1e9),
            ("@ 32000", 32000.0),
            ("@ 6.4 MS/s", 6.4e6),
        ] {
            let src = format!(
                "mod par D(){{ source int x = s() {text}; sink int y = t() @ 1 Hz; A(x, out y) }}"
            );
            let p = parse_program(&src).unwrap();
            match &p.module("D").unwrap().body {
                ModuleBody::Par(b) => match &b.buffers[0] {
                    BufferDecl::Source { rate, .. } => assert_eq!(rate.hz, hz, "for {text}"),
                    _ => panic!(),
                },
                _ => panic!(),
            }
        }
    }
}
