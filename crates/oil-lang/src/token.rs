//! Token definitions for the OIL lexer.

use crate::span::Span;
use std::fmt;

/// The different kinds of tokens produced by the [`lexer`](crate::lexer).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // ---- keywords (Fig. 5 of the paper) ----
    /// `mod`
    Mod,
    /// `par`
    Par,
    /// `seq`
    Seq,
    /// `fifo`
    Fifo,
    /// `source`
    Source,
    /// `sink`
    Sink,
    /// `start`
    Start,
    /// `after`
    After,
    /// `before`
    Before,
    /// `out`
    Out,
    /// `if`
    If,
    /// `else`
    Else,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `loop`
    Loop,
    /// `while`
    While,

    // ---- literals and identifiers ----
    /// An identifier: module names, function names, variables, streams, types.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal (e.g. `6.4` in `6.4 MHz`).
    Float(f64),

    // ---- punctuation ----
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `@`
    At,
    /// `||` or the Unicode `‖` used in the paper: parallel composition.
    ParallelBar,
    /// `*`
    Star,
    /// `/` or `\` (the paper's Fig. 5 uses `\` for division)
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `!`
    Not,
    /// `...` — the paper writes `if(...)` for an unspecified data-dependent
    /// condition; we accept it as an opaque condition literal.
    Ellipsis,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// True for tokens that may start an expression.
    pub fn starts_expression(&self) -> bool {
        matches!(
            self,
            TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Float(_)
                | TokenKind::LParen
                | TokenKind::Minus
                | TokenKind::Not
                | TokenKind::Ellipsis
        )
    }

    /// If the token is a keyword, return its textual form.
    pub fn keyword_str(&self) -> Option<&'static str> {
        Some(match self {
            TokenKind::Mod => "mod",
            TokenKind::Par => "par",
            TokenKind::Seq => "seq",
            TokenKind::Fifo => "fifo",
            TokenKind::Source => "source",
            TokenKind::Sink => "sink",
            TokenKind::Start => "start",
            TokenKind::After => "after",
            TokenKind::Before => "before",
            TokenKind::Out => "out",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::Switch => "switch",
            TokenKind::Case => "case",
            TokenKind::Default => "default",
            TokenKind::Loop => "loop",
            TokenKind::While => "while",
            _ => return None,
        })
    }

    /// Look up a keyword by its textual form.
    pub fn keyword_from_str(s: &str) -> Option<TokenKind> {
        Some(match s {
            "mod" => TokenKind::Mod,
            "par" => TokenKind::Par,
            "seq" => TokenKind::Seq,
            "fifo" => TokenKind::Fifo,
            "source" => TokenKind::Source,
            "sink" => TokenKind::Sink,
            "start" => TokenKind::Start,
            "after" => TokenKind::After,
            "before" => TokenKind::Before,
            "out" => TokenKind::Out,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "default" => TokenKind::Default,
            "loop" => TokenKind::Loop,
            "while" => TokenKind::While,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(kw) = self.keyword_str() {
            return write!(f, "`{kw}`");
        }
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::Float(x) => write!(f, "number `{x}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::At => write!(f, "`@`"),
            TokenKind::ParallelBar => write!(f, "`||`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Eq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::Not => write!(f, "`!`"),
            TokenKind::Ellipsis => write!(f, "`...`"),
            TokenKind::Eof => write!(f, "end of input"),
            _ => unreachable!("keyword handled above"),
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it appears in the source text.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// True if the token marks the end of input.
    pub fn is_eof(&self) -> bool {
        self.kind == TokenKind::Eof
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            "mod", "par", "seq", "fifo", "source", "sink", "start", "after", "before", "out", "if",
            "else", "switch", "case", "default", "loop", "while",
        ] {
            let tok = TokenKind::keyword_from_str(kw).expect("known keyword");
            assert_eq!(tok.keyword_str(), Some(kw));
        }
        assert_eq!(TokenKind::keyword_from_str("module"), None);
    }

    #[test]
    fn expression_starters() {
        assert!(TokenKind::Ident("x".into()).starts_expression());
        assert!(TokenKind::Int(3).starts_expression());
        assert!(TokenKind::Minus.starts_expression());
        assert!(TokenKind::Ellipsis.starts_expression());
        assert!(!TokenKind::Semicolon.starts_expression());
        assert!(!TokenKind::Out.starts_expression());
    }

    #[test]
    fn display_is_reasonable() {
        assert_eq!(TokenKind::Mod.to_string(), "`mod`");
        assert_eq!(
            TokenKind::Ident("foo".into()).to_string(),
            "identifier `foo`"
        );
        assert_eq!(TokenKind::ParallelBar.to_string(), "`||`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
