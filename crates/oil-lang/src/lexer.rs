//! Hand-written lexer for OIL source text.
//!
//! The lexer recognises the core syntax of the paper's Figure 5 plus the
//! notational conveniences used by the paper's own program listings: `//` and
//! `/* */` comments, the Unicode parallel bar `‖`, the `...` placeholder
//! condition and floating point frequency values such as `6.4` (as in
//! `@ 6.4 MHz`).

use crate::span::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Converts OIL source text into a token stream.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    /// Tokenise the whole input. The returned vector always ends with an
    /// [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut tokens = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.is_eof();
            tokens.push(tok);
            if eof {
                break;
            }
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, column: u32) -> Span {
        Span::new(start, self.pos, line, column)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (start, line, column) = (self.pos, self.line, self.column);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(Diagnostic::error(
                                    "unterminated block comment",
                                    self.span_from(start, line, column),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let (start, line, column) = (self.pos, self.line, self.column);
        let Some(b) = self.peek() else {
            return Ok(Token::new(
                TokenKind::Eof,
                self.span_from(start, line, column),
            ));
        };

        // Unicode parallel bar `‖` (U+2016, UTF-8 e2 80 96).
        if b == 0xe2 && self.src[self.pos..].starts_with('\u{2016}') {
            for _ in 0..'\u{2016}'.len_utf8() {
                self.bump();
            }
            return Ok(Token::new(
                TokenKind::ParallelBar,
                self.span_from(start, line, column),
            ));
        }

        if b.is_ascii_alphabetic() || b == b'_' {
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            let kind = TokenKind::keyword_from_str(text)
                .unwrap_or_else(|| TokenKind::Ident(text.to_string()));
            return Ok(Token::new(kind, self.span_from(start, line, column)));
        }

        if b.is_ascii_digit() {
            let mut is_float = false;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == b'_' {
                    self.bump();
                } else if c == b'.'
                    && !is_float
                    && self.peek2().map(|d| d.is_ascii_digit()).unwrap_or(false)
                {
                    is_float = true;
                    self.bump();
                } else {
                    break;
                }
            }
            let text: String = self.src[start..self.pos]
                .chars()
                .filter(|c| *c != '_')
                .collect();
            let span = self.span_from(start, line, column);
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| {
                    Diagnostic::error(format!("invalid float literal `{text}`"), span)
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| {
                    Diagnostic::error(format!("invalid integer literal `{text}`"), span)
                })?)
            };
            return Ok(Token::new(kind, span));
        }

        // Punctuation.
        let kind = match b {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'@' => {
                self.bump();
                TokenKind::At
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' | b'\\' => {
                self.bump();
                TokenKind::Slash
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Eq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' if self.peek2() == Some(b'&') => {
                self.bump();
                self.bump();
                TokenKind::AndAnd
            }
            b'|' if self.peek2() == Some(b'|') => {
                self.bump();
                self.bump();
                TokenKind::ParallelBar
            }
            b'.' if self.peek2() == Some(b'.') => {
                self.bump();
                self.bump();
                if self.peek() == Some(b'.') {
                    self.bump();
                }
                TokenKind::Ellipsis
            }
            other => {
                let ch = self.src[self.pos..].chars().next().unwrap_or(other as char);
                return Err(Diagnostic::error(
                    format!("unexpected character `{ch}`"),
                    self.span_from(start, line, column),
                ));
            }
        };
        Ok(Token::new(kind, self.span_from(start, line, column)))
    }
}

/// Tokenise `src`, returning the token stream or the first lexical error.
pub fn tokenize(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_module_header() {
        let k = kinds("mod seq A(out int a, int b){");
        assert_eq!(
            k,
            vec![
                TokenKind::Mod,
                TokenKind::Seq,
                TokenKind::Ident("A".into()),
                TokenKind::LParen,
                TokenKind::Out,
                TokenKind::Ident("int".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("int".into()),
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_colon_rate_and_slice() {
        let k = kinds("f(out x:3, y[0:2]);");
        assert!(k.contains(&TokenKind::Colon));
        assert!(k.contains(&TokenKind::LBracket));
        assert!(k.contains(&TokenKind::Int(3)));
    }

    #[test]
    fn lex_parallel_bars() {
        let k = kinds("A(out x, y) || B(out y, x)");
        assert_eq!(
            k.iter().filter(|t| **t == TokenKind::ParallelBar).count(),
            1
        );
        let k2 = kinds("A(out x, y) \u{2016} B(out y, x)");
        assert_eq!(
            k2.iter().filter(|t| **t == TokenKind::ParallelBar).count(),
            1
        );
    }

    #[test]
    fn lex_frequency_and_latency() {
        let k = kinds("source sample rf = receiveRF() @ 6.4 MHz; start x 5 ms before y;");
        assert!(k.contains(&TokenKind::Source));
        assert!(k.contains(&TokenKind::At));
        assert!(k.contains(&TokenKind::Float(6.4)));
        assert!(k.contains(&TokenKind::Ident("MHz".into())));
        assert!(k.contains(&TokenKind::Start));
        assert!(k.contains(&TokenKind::Before));
        assert!(k.contains(&TokenKind::Int(5)));
    }

    #[test]
    fn lex_comments() {
        let k = kinds("x = 1; // trailing comment\n/* block\ncomment */ y = 2;");
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Ident(_)))
                .count(),
            2
        );
        assert_eq!(
            k.iter().filter(|t| matches!(t, TokenKind::Int(_))).count(),
            2
        );
    }

    #[test]
    fn lex_operators_and_comparisons() {
        let k = kinds("a == b != c <= d >= e < f > g && !h");
        assert!(k.contains(&TokenKind::Eq));
        assert!(k.contains(&TokenKind::Ne));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Lt));
        assert!(k.contains(&TokenKind::Gt));
        assert!(k.contains(&TokenKind::AndAnd));
        assert!(k.contains(&TokenKind::Not));
    }

    #[test]
    fn lex_ellipsis_condition() {
        let k = kinds("if(...) { y = g(); }");
        assert!(k.contains(&TokenKind::Ellipsis));
        // Two dots also accepted as the placeholder.
        let k2 = kinds("while(..)");
        assert!(k2.contains(&TokenKind::Ellipsis));
    }

    #[test]
    fn lex_backslash_division() {
        let k = kinds("a \\ b / c");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Slash).count(), 2);
    }

    #[test]
    fn lex_unterminated_block_comment_is_error() {
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn lex_unexpected_character_is_error() {
        let err = tokenize("x = #3;").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("a\n  b\nc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.column, 3);
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn underscores_in_numbers() {
        let k = kinds("6_400_000");
        assert_eq!(k[0], TokenKind::Int(6_400_000));
    }
}
