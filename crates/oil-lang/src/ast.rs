//! Abstract syntax tree for OIL programs.
//!
//! The node structure follows the core grammar of the paper's Figure 5:
//!
//! ```text
//! Program      P ::= M*
//! Modules      M ::= mod par A(R){ G L N } | mod seq A(R) { V S }
//! Buffers      G ::= fifo T x; | source T x = F() @ n Hz; | sink T x = F() @ n Hz;
//! Latency      L ::= start x n ms after y; | start x n ms before y;
//! Streams      R ::= out T r | T r
//! Module calls N ::= A(B) | N ‖ N
//! Statements   S ::= x = e; | F(A); | if(e){S}else{S} | if(e){S} |
//!                    switch(e) C default {S} | loop {S} while(e)
//! Arguments    A ::= e | out x | out r | out r:n
//! ```

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Where it appears in the source.
    pub span: Span,
}

impl Ident {
    /// Construct an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }

    /// Construct an identifier without a source location (for synthesised
    /// nodes, e.g. programs built programmatically in tests and benches).
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: Span::synthetic(),
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A complete OIL program: a list of module definitions. The concurrent
/// structure of the application is rooted in the *top module*: either the
/// single anonymous `mod par { .. }` block or, if absent, the last defined
/// module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// All module definitions in source order.
    pub modules: Vec<Module>,
}

impl Program {
    /// Find a module definition by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules
            .iter()
            .find(|m| m.name.as_ref().map(|n| n.name.as_str()) == Some(name))
    }

    /// The top module of the program: the anonymous `mod par { .. }` block if
    /// one exists, otherwise the last module in the file.
    pub fn top_module(&self) -> Option<&Module> {
        self.modules
            .iter()
            .find(|m| m.name.is_none())
            .or_else(|| self.modules.last())
    }
}

/// Whether a module contains a parallel or a sequential specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// `mod par`: instantiates other modules which execute concurrently.
    Par,
    /// `mod seq`: a sequential specification which is automatically
    /// parallelised by the compiler.
    Seq,
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleKind::Par => write!(f, "mod par"),
            ModuleKind::Seq => write!(f, "mod seq"),
        }
    }
}

/// A module definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Name, or `None` for the anonymous top-level `mod par { .. }` block.
    pub name: Option<Ident>,
    /// Parallel or sequential.
    pub kind: ModuleKind,
    /// Stream parameters (FIFOs passed by the instantiating module).
    pub params: Vec<StreamParam>,
    /// The module body.
    pub body: ModuleBody,
    /// Source location of the whole definition.
    pub span: Span,
}

impl Module {
    /// The module's name, or `"<top>"` for the anonymous top module.
    pub fn display_name(&self) -> &str {
        self.name
            .as_ref()
            .map(|n| n.name.as_str())
            .unwrap_or("<top>")
    }

    /// Input stream parameters (those without `out`).
    pub fn input_params(&self) -> impl Iterator<Item = &StreamParam> {
        self.params.iter().filter(|p| !p.out)
    }

    /// Output stream parameters (those with `out`).
    pub fn output_params(&self) -> impl Iterator<Item = &StreamParam> {
        self.params.iter().filter(|p| p.out)
    }
}

/// A stream parameter of a module: `out T r` or `T r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamParam {
    /// True if this is an output stream of the module.
    pub out: bool,
    /// Type name (opaque to OIL; checked by the host C/C++ compiler).
    pub ty: Ident,
    /// Stream name.
    pub name: Ident,
}

/// The body of a module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModuleBody {
    /// A parallel body: buffer declarations, latency constraints and a
    /// parallel composition of module instantiations.
    Par(ParBody),
    /// A sequential body: local variable declarations and statements.
    Seq(SeqBody),
}

/// The body of a `mod par` module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParBody {
    /// FIFO, source and sink declarations.
    pub buffers: Vec<BufferDecl>,
    /// `start .. after/before ..` latency constraints.
    pub latencies: Vec<LatencyConstraint>,
    /// Module instantiations composed with `‖`.
    pub calls: Vec<ModuleCall>,
}

/// A buffer declaration in a parallel module body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BufferDecl {
    /// `fifo T x, y, ..;`
    Fifo {
        /// Element type.
        ty: Ident,
        /// Declared FIFO names.
        names: Vec<Ident>,
        /// Source location.
        span: Span,
    },
    /// `source T x = F() @ n Hz;` — a time-triggered source sampling the
    /// environment at a fixed rate.
    Source {
        /// Element type.
        ty: Ident,
        /// Stream name the source writes to.
        name: Ident,
        /// Function implementing the low-level communication.
        func: Ident,
        /// Sampling frequency.
        rate: Frequency,
        /// Source location.
        span: Span,
    },
    /// `sink T x = F() @ n Hz;` — a time-triggered sink consuming from the
    /// program at a fixed rate.
    Sink {
        /// Element type.
        ty: Ident,
        /// Stream name the sink reads from.
        name: Ident,
        /// Function implementing the low-level communication.
        func: Ident,
        /// Consumption frequency.
        rate: Frequency,
        /// Source location.
        span: Span,
    },
}

impl BufferDecl {
    /// Source location of the declaration.
    pub fn span(&self) -> Span {
        match self {
            BufferDecl::Fifo { span, .. }
            | BufferDecl::Source { span, .. }
            | BufferDecl::Sink { span, .. } => *span,
        }
    }
}

/// A frequency such as `1 kHz` or `6.4 MHz`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    /// The frequency in Hertz.
    pub hz: f64,
}

impl Frequency {
    /// Construct a frequency from a value in Hertz.
    pub fn from_hz(hz: f64) -> Self {
        Frequency { hz }
    }

    /// The period in seconds.
    pub fn period_seconds(&self) -> f64 {
        1.0 / self.hz
    }

    /// The period in integer picoseconds (rounded), the time base used by the
    /// simulator.
    pub fn period_picos(&self) -> u64 {
        (1e12 / self.hz).round() as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz >= 1e6 {
            write!(f, "{} MHz", self.hz / 1e6)
        } else if self.hz >= 1e3 {
            write!(f, "{} kHz", self.hz / 1e3)
        } else {
            write!(f, "{} Hz", self.hz)
        }
    }
}

/// Direction of a latency constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyRelation {
    /// `start x n ms after y`: x must start at least/defined n ms after y.
    After,
    /// `start x n ms before y`: x must start within n ms before y.
    Before,
}

/// A latency constraint between two sources/sinks:
/// `start x n ms after y;` or `start x n ms before y;`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyConstraint {
    /// The source/sink being constrained.
    pub subject: Ident,
    /// The amount of time, in milliseconds.
    pub amount_ms: f64,
    /// Whether the subject starts after or before the reference.
    pub relation: LatencyRelation,
    /// The source/sink the constraint is relative to.
    pub reference: Ident,
    /// Source location.
    pub span: Span,
}

/// A module instantiation `A(out x, y)` inside a parallel composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleCall {
    /// Name of the instantiated module.
    pub module: Ident,
    /// Stream arguments.
    pub args: Vec<CallArg>,
    /// Source location.
    pub span: Span,
}

/// A stream argument of a module instantiation: `out r` or `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallArg {
    /// True if the instantiated module writes this stream.
    pub out: bool,
    /// The FIFO / source / sink / parameter stream passed.
    pub name: Ident,
}

/// The body of a `mod seq` module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqBody {
    /// Local variable declarations `T x;` (and array declarations `T x[n];`).
    pub vars: Vec<VarDecl>,
    /// Statements in program order.
    pub stmts: Vec<Stmt>,
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Type name.
    pub ty: Ident,
    /// Variable name.
    pub name: Ident,
    /// Array length if declared as `T x[n];`.
    pub array_len: Option<u64>,
    /// Source location.
    pub span: Span,
}

/// A statement in a sequential module body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `x = e;`
    Assign {
        /// The assigned variable or output stream access.
        target: Access,
        /// Right-hand side expression.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `F(a, out b, ..);`
    Call {
        /// The coordinated (C/C++-style) function.
        func: Ident,
        /// Arguments.
        args: Vec<Arg>,
        /// Source location.
        span: Span,
    },
    /// `if (e) { .. } else { .. }` — the else branch is optional.
    If {
        /// Condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise (empty when no `else` was written).
        else_branch: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `switch (e) case n { .. } .. default { .. }`
    Switch {
        /// The value switched on.
        scrutinee: Expr,
        /// `case n { .. }` arms.
        cases: Vec<Case>,
        /// The `default { .. }` arm.
        default: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `loop { .. } while (e);` — executes the body at least once and repeats
    /// while the condition holds. `while(1)` denotes an infinite stream loop.
    LoopWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Continuation condition (evaluated after each iteration).
        cond: Expr,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// Source location of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Switch { span, .. }
            | Stmt::LoopWhile { span, .. } => *span,
        }
    }

    /// True if this statement (or any nested statement) contains a loop.
    pub fn contains_loop(&self) -> bool {
        match self {
            Stmt::LoopWhile { .. } => true,
            Stmt::Assign { .. } | Stmt::Call { .. } => false,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.iter().any(Stmt::contains_loop)
                    || else_branch.iter().any(Stmt::contains_loop)
            }
            Stmt::Switch { cases, default, .. } => {
                cases.iter().any(|c| c.body.iter().any(Stmt::contains_loop))
                    || default.iter().any(Stmt::contains_loop)
            }
        }
    }
}

/// A `case n { .. }` arm of a switch statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    /// The matched (non-negative) value.
    pub value: i64,
    /// The arm body.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A variable or stream access, possibly with the colon multi-rate notation
/// `r:n` (read/write `n` values per loop iteration) or the array-slice
/// notation `x[a:b]` used by the paper's sequential examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Access {
    /// The accessed variable or stream.
    pub name: Ident,
    /// Number of values accessed per iteration (`r:n`); `None` means one.
    pub rate: Option<u64>,
    /// Array slice bounds (`x[a:b]`, inclusive) if written with brackets.
    pub slice: Option<(u64, u64)>,
}

impl Access {
    /// Plain access to a single value.
    pub fn simple(name: Ident) -> Self {
        Access {
            name,
            rate: None,
            slice: None,
        }
    }

    /// Number of values transferred per access: `n` for `r:n`, the slice
    /// length for `x[a:b]`, otherwise one.
    pub fn count(&self) -> u64 {
        if let Some(n) = self.rate {
            n
        } else if let Some((lo, hi)) = self.slice {
            hi.saturating_sub(lo) + 1
        } else {
            1
        }
    }
}

/// An argument of a coordinated function call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Arg {
    /// An input argument: an arbitrary expression.
    In(Expr),
    /// An output argument: `out x`, `out r` or `out r:n`.
    Out(Access),
}

impl Arg {
    /// True for `out` arguments.
    pub fn is_out(&self) -> bool {
        matches!(self, Arg::Out(_))
    }
}

/// Binary operators of the expression grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `*`
    Mul,
    /// `/` (written `\` in the paper's grammar)
    Div,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
}

impl BinOp {
    /// Binding power used by the Pratt parser (higher binds tighter).
    pub fn precedence(&self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div => 5,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Eq | BinOp::Ne => 2,
            BinOp::And => 1,
        }
    }

    /// The operator's source form.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// An integer literal.
    Int(i64, Span),
    /// A floating point literal.
    Float(f64, Span),
    /// A variable or stream read, possibly multi-rate (`r:n`) or sliced.
    Var(Access, Span),
    /// A call of a coordinated function used as a value, e.g. `y = g();`.
    Call {
        /// The function name.
        func: Ident,
        /// Input argument expressions.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Logical negation `!e`.
    Not(Box<Expr>, Span),
    /// The `...` placeholder the paper uses for an unspecified data-dependent
    /// condition. Semantically an opaque boolean read from module state.
    Opaque(Span),
}

impl Expr {
    /// Source location of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Var(_, s)
            | Expr::Not(_, s)
            | Expr::Opaque(s) => *s,
            Expr::Call { span, .. } | Expr::Binary { span, .. } => *span,
        }
    }

    /// True for the literal `1`, conventionally used as the always-true
    /// condition of an infinite stream loop (`loop { .. } while(1);`).
    pub fn is_always_true(&self) -> bool {
        matches!(self, Expr::Int(n, _) if *n != 0)
    }

    /// Collect every variable/stream read performed by this expression.
    pub fn reads(&self, out: &mut Vec<Access>) {
        match self {
            Expr::Int(..) | Expr::Float(..) | Expr::Opaque(..) => {}
            Expr::Var(a, _) => out.push(a.clone()),
            Expr::Call { args, .. } => {
                for a in args {
                    a.reads(out);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.reads(out);
                rhs.reads(out);
            }
            Expr::Not(e, _) => e.reads(out),
        }
    }

    /// Collect every coordinated function invoked by this expression.
    pub fn called_functions(&self, out: &mut Vec<Ident>) {
        match self {
            Expr::Call { func, args, .. } => {
                out.push(func.clone());
                for a in args {
                    a.called_functions(out);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.called_functions(out);
                rhs.called_functions(out);
            }
            Expr::Not(e, _) => e.called_functions(out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(s: &str) -> Ident {
        Ident::synthetic(s)
    }

    #[test]
    fn access_count() {
        assert_eq!(Access::simple(ident("x")).count(), 1);
        assert_eq!(
            Access {
                name: ident("x"),
                rate: Some(3),
                slice: None
            }
            .count(),
            3
        );
        assert_eq!(
            Access {
                name: ident("x"),
                rate: None,
                slice: Some((0, 2))
            }
            .count(),
            3
        );
        assert_eq!(
            Access {
                name: ident("x"),
                rate: None,
                slice: Some((4, 5))
            }
            .count(),
            2
        );
    }

    #[test]
    fn frequency_periods() {
        let f = Frequency::from_hz(6.4e6);
        assert_eq!(f.period_picos(), 156_250);
        let f2 = Frequency::from_hz(32_000.0);
        assert_eq!(f2.period_picos(), 31_250_000);
        assert!((f.period_seconds() - 1.5625e-7).abs() < 1e-18);
        assert_eq!(f.to_string(), "6.4 MHz");
        assert_eq!(Frequency::from_hz(32e3).to_string(), "32 kHz");
        assert_eq!(Frequency::from_hz(50.0).to_string(), "50 Hz");
    }

    #[test]
    fn expr_reads_and_calls() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Var(Access::simple(ident("a")), Span::synthetic())),
            rhs: Box::new(Expr::Call {
                func: ident("f"),
                args: vec![Expr::Var(Access::simple(ident("b")), Span::synthetic())],
                span: Span::synthetic(),
            }),
            span: Span::synthetic(),
        };
        let mut reads = Vec::new();
        e.reads(&mut reads);
        assert_eq!(reads.len(), 2);
        let mut calls = Vec::new();
        e.called_functions(&mut calls);
        assert_eq!(calls, vec![ident("f")]);
    }

    #[test]
    fn binop_precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
    }

    #[test]
    fn stmt_contains_loop() {
        let inner_loop = Stmt::LoopWhile {
            body: vec![],
            cond: Expr::Int(1, Span::synthetic()),
            span: Span::synthetic(),
        };
        let s = Stmt::If {
            cond: Expr::Opaque(Span::synthetic()),
            then_branch: vec![inner_loop],
            else_branch: vec![],
            span: Span::synthetic(),
        };
        assert!(s.contains_loop());
        let s2 = Stmt::Call {
            func: ident("f"),
            args: vec![],
            span: Span::synthetic(),
        };
        assert!(!s2.contains_loop());
    }

    #[test]
    fn always_true_condition() {
        assert!(Expr::Int(1, Span::synthetic()).is_always_true());
        assert!(!Expr::Int(0, Span::synthetic()).is_always_true());
        assert!(!Expr::Opaque(Span::synthetic()).is_always_true());
    }
}
