//! Functional reference implementation of the PAL decoder signal path.
//!
//! The OIL program coordinates the DSP kernels; this module wires the same
//! kernels together directly (single-threaded, no coordination layer) so the
//! functional behaviour of the decoder — audio tone recovery and the exact
//! output rates — can be checked independently of the temporal analysis.

use oil_dsp::{Decimator, FirFilter, Mixer, RationalResampler, Sample};
use serde::{Deserialize, Serialize};

/// Output of running the native decoder over a block of RF samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NativeDecodeOutput {
    /// Video samples at 4 MS/s.
    pub video: Vec<Sample>,
    /// Audio samples at 32 kS/s.
    pub audio: Vec<Sample>,
}

/// The reference decoder: splitter (mixer + filters), the 1/25 and 10/16
/// sample-rate converters and the black-box stand-ins (video pass-through at
/// 4 MS/s, audio decimation by 8 with a mute control).
#[derive(Debug, Clone)]
pub struct NativePalDecoder {
    mix_a: Mixer,
    src_a: Decimator,
    lpf_v: FirFilter,
    src_v: RationalResampler,
    audio_final: Decimator,
    /// When true the Audio module outputs silence (the paper mentions the
    /// black-box Audio module mutes its output on bad reception — the modal
    /// behaviour hidden inside the black box).
    pub mute: bool,
}

impl Default for NativePalDecoder {
    fn default() -> Self {
        Self::new(2.0e6)
    }
}

impl NativePalDecoder {
    /// Create a decoder whose audio carrier sits at `audio_carrier_hz`.
    pub fn new(audio_carrier_hz: f64) -> Self {
        NativePalDecoder {
            mix_a: Mixer::new(audio_carrier_hz, 6.4e6),
            src_a: Decimator::new(25, 6.4e6, 63),
            lpf_v: FirFilter::low_pass(1.0e6, 6.4e6, 63),
            src_v: RationalResampler::new(10, 16, 6.4e6, 63),
            audio_final: Decimator::new(8, 256_000.0, 63),
            mute: false,
        }
    }

    /// Decode a block of RF samples (sampled at 6.4 MS/s).
    pub fn decode(&mut self, rf: &[Sample]) -> NativeDecodeOutput {
        // Audio path: mix the carrier to zero, low-pass + decimate by 25,
        // then the Audio black box decimates by 8 (and may mute).
        let mixed = self.mix_a.process(rf);
        let audio_256k = self.src_a.process(&mixed);
        let mut audio = self.audio_final.process(&audio_256k);
        if self.mute {
            audio.iter_mut().for_each(|s| *s = 0.0);
        }
        // Video path: remove the audio band, resample by 10/16; the Video
        // black box consumes the 4 MS/s stream unchanged.
        let video_band = self.lpf_v.process(rf);
        let video = self.src_v.process(&video_band);
        NativeDecodeOutput { video, audio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_dsp::generator::{dominant_frequency, rms};
    use oil_dsp::CompositeSignal;

    #[test]
    fn output_rates_are_4mhz_and_32khz() {
        let mut decoder = NativePalDecoder::default();
        let mut signal = CompositeSignal::pal_default();
        // 10 ms of RF at 6.4 MS/s.
        let rf = signal.block(64_000);
        let out = decoder.decode(&rf);
        assert_eq!(out.video.len(), 64_000 * 10 / 16);
        assert_eq!(out.audio.len(), 64_000 / 25 / 8);
    }

    #[test]
    fn audio_tone_is_recovered() {
        let mut decoder = NativePalDecoder::new(2.0e6);
        let mut signal = CompositeSignal::new(6.4e6, 50_000.0, 1_000.0, 2.0e6);
        // 50 ms of RF so the 1 kHz tone completes many periods at 32 kS/s.
        let rf = signal.block(320_000);
        let out = decoder.decode(&rf);
        let audio_tail = &out.audio[out.audio.len() / 2..];
        let freq = dominant_frequency(audio_tail, 32_000.0);
        assert!((freq - 1_000.0).abs() < 100.0, "recovered {freq} Hz");
        assert!(rms(audio_tail) > 0.05);
    }

    #[test]
    fn video_band_survives_and_audio_carrier_is_removed() {
        let mut decoder = NativePalDecoder::default();
        let mut signal = CompositeSignal::pal_default();
        let rf = signal.block(128_000);
        let out = decoder.decode(&rf);
        let video_tail = &out.video[out.video.len() / 2..];
        // The 50 kHz video content is preserved in the 4 MS/s stream.
        let freq = dominant_frequency(video_tail, 4.0e6);
        assert!(
            (freq - 50_000.0).abs() < 10_000.0,
            "video content at {freq} Hz"
        );
    }

    #[test]
    fn mute_silences_audio_only() {
        let mut decoder = NativePalDecoder {
            mute: true,
            ..Default::default()
        };
        let mut signal = CompositeSignal::pal_default();
        let rf = signal.block(64_000);
        let out = decoder.decode(&rf);
        assert!(out.audio.iter().all(|&s| s == 0.0));
        assert!(rms(&out.video) > 0.0);
    }
}
