//! Temporal analysis of the PAL decoder (the paper's Fig. 12).
//!
//! Compiling the Fig. 11 program derives the CTA model sketched in the
//! paper's Fig. 12: components for the splitter's rate converters, the
//! black-box `Video`/`Audio` modules, the RF source and the two sinks, FIFO
//! capacity connections (`-δ/r`) and the zero-skew latency cycle between the
//! sinks. [`analyze_pal`] runs the whole flow and gathers the numbers the
//! experiments record: achieved channel rates, the rate-conversion ratios
//! `γ = 1/25`, `10/16` and `1/8`, buffer capacities and end-to-end latencies.

use crate::program::{pal_registry, PAL_DECODER_OIL};
use oil_compiler::{compile, CompileError, CompiledProgram, CompilerOptions};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Results of analysing the PAL decoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PalAnalysis {
    /// Token rate of every channel (Hz), keyed by channel name suffix.
    pub channel_rates: BTreeMap<String, f64>,
    /// Buffer capacity of every channel, in samples.
    pub channel_capacities: BTreeMap<String, u64>,
    /// End-to-end latency bound RF -> screen, in seconds.
    pub latency_rf_to_screen: f64,
    /// End-to-end latency bound RF -> speakers, in seconds.
    pub latency_rf_to_speakers: f64,
    /// Number of CTA components in the derived model.
    pub cta_components: usize,
    /// Number of CTA connections in the derived model.
    pub cta_connections: usize,
}

impl PalAnalysis {
    /// The audio/video skew implied by the analysis (seconds); the program
    /// requires it to be zero, so the bound must be (numerically) tiny.
    pub fn av_skew(&self) -> f64 {
        (self.latency_rf_to_screen - self.latency_rf_to_speakers).abs()
    }
}

/// Compile and analyse the PAL decoder, returning both the raw compiled
/// program and the summarised analysis.
pub fn analyze_pal() -> Result<(CompiledProgram, PalAnalysis), CompileError> {
    let registry = pal_registry();
    let compiled = compile(PAL_DECODER_OIL, &registry, &CompilerOptions::default())?;

    let mut channel_rates = BTreeMap::new();
    for ch in &compiled.analyzed.graph.channels {
        let suffix = ch.name.rsplit('.').next().unwrap_or(&ch.name).to_string();
        if let Some(rate) = compiled.channel_rate(&suffix) {
            channel_rates.insert(suffix, rate);
        }
    }
    let mut channel_capacities = BTreeMap::new();
    for (name, cap) in &compiled.buffers.channels {
        let suffix = name.rsplit('.').next().unwrap_or(name).to_string();
        channel_capacities.insert(suffix, *cap);
    }

    let latency_rf_to_screen = compiled.latency_between("rf", "screen").unwrap_or(f64::NAN);
    let latency_rf_to_speakers = compiled.latency_between("rf", "speakers").unwrap_or(f64::NAN);

    let analysis = PalAnalysis {
        channel_rates,
        channel_capacities,
        latency_rf_to_screen,
        latency_rf_to_speakers,
        cta_components: compiled.derived.cta.component_count(),
        cta_connections: compiled.derived.cta.connection_count(),
    };
    Ok((compiled, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pal_decoder_is_schedulable() {
        let (compiled, analysis) = analyze_pal().expect("the PAL decoder must be accepted");
        assert!(compiled.consistency.min_slack() >= -1e-9);
        assert!(analysis.cta_components > 10);
        assert!(analysis.cta_connections > 20);
    }

    #[test]
    fn channel_rates_match_the_paper() {
        let (_, analysis) = analyze_pal().unwrap();
        let rate = |name: &str| *analysis.channel_rates.get(name).unwrap_or(&f64::NAN);
        // RF at 6.4 MS/s; video FIFO at 4 MS/s (10/16 conversion); audio FIFO
        // at 256 kS/s (1/25) feeding the Audio black box which outputs
        // 32 kS/s; the sinks at their declared rates.
        assert!((rate("rf") - 6.4e6).abs() < 1.0, "rf {}", rate("rf"));
        assert!((rate("vid") - 4.0e6).abs() < 1.0, "vid {}", rate("vid"));
        assert!((rate("aud") - 256e3).abs() < 1.0, "aud {}", rate("aud"));
        assert!((rate("screen") - 4.0e6).abs() < 1.0);
        assert!((rate("speakers") - 32e3).abs() < 1.0);
        // Intermediate FIFOs inside the splitter run at the RF rate.
        assert!((rate("mas") - 6.4e6).abs() < 1.0);
        assert!((rate("mvs") - 6.4e6).abs() < 1.0);
    }

    #[test]
    fn rate_conversion_factors_match_the_paper() {
        let (_, analysis) = analyze_pal().unwrap();
        let rate = |name: &str| *analysis.channel_rates.get(name).unwrap_or(&f64::NAN);
        assert!((rate("aud") / rate("mas") - 1.0 / 25.0).abs() < 1e-9);
        assert!((rate("vid") / rate("mvs") - 10.0 / 16.0).abs() < 1e-9);
        assert!((rate("speakers") / rate("aud") - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_capacities_are_sufficient_and_modest() {
        let (compiled, analysis) = analyze_pal().unwrap();
        for (name, cap) in &analysis.channel_capacities {
            assert!(*cap >= 1, "channel {name} has no capacity");
            assert!(*cap <= 4096, "channel {name} implausibly large: {cap}");
        }
        // Applying the capacities keeps the model consistent (already part of
        // compilation, re-checked here explicitly).
        assert!(compiled.sized_model.consistency_at_maximal_rates(1e-9).is_ok());
    }

    #[test]
    fn audio_video_skew_is_zero() {
        let (_, analysis) = analyze_pal().unwrap();
        assert!(analysis.latency_rf_to_screen.is_finite());
        assert!(analysis.latency_rf_to_speakers.is_finite());
        // The zero-skew constraint pins both sink start times; the analysed
        // path latencies agree to within the analysis tolerance.
        assert!(analysis.av_skew() <= 1e-3, "skew {}", analysis.av_skew());
    }

    #[test]
    fn slower_processors_are_rejected() {
        // Scaling every response time up by 100x makes the video path miss
        // the 4 MS/s display rate: the compiler must reject the program.
        let registry = oil_dsp::dsp_registry(100.0);
        let result = compile(PAL_DECODER_OIL, &registry, &CompilerOptions::default());
        assert!(result.is_err(), "a 100x slower platform cannot sustain the PAL rates");
    }
}
