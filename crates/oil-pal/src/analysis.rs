//! Temporal analysis of the PAL decoder (the paper's Fig. 12).
//!
//! Compiling the Fig. 11 program derives the CTA model sketched in the
//! paper's Fig. 12: components for the splitter's rate converters, the
//! black-box `Video`/`Audio` modules, the RF source and the two sinks, FIFO
//! capacity connections (`-δ/r`) and the zero-skew latency cycle between the
//! sinks. [`analyze_pal`] runs the whole flow and gathers the numbers the
//! experiments record: achieved channel rates, the rate-conversion ratios
//! `γ = 1/25`, `10/16` and `1/8`, buffer capacities and end-to-end latencies.
//!
//! All recorded quantities are **exact rationals** straight out of the CTA
//! analyses — the conversion-factor checks below are exact equalities, not
//! epsilon comparisons. The `*_hz`/`*_seconds` helpers convert to `f64` for
//! reporting only.

use crate::program::{pal_registry, PAL_DECODER_OIL};
use oil_compiler::{compile, CompileError, CompiledProgram, CompilerOptions};
use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Results of analysing the PAL decoder. Rates and latencies are exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PalAnalysis {
    /// Token rate of every channel (Hz), keyed by channel name suffix.
    pub channel_rates: BTreeMap<String, Rational>,
    /// Buffer capacity of every channel, in samples.
    pub channel_capacities: BTreeMap<String, u64>,
    /// End-to-end latency bound RF -> screen, in seconds (`None` if the
    /// screen is unreachable from the RF source in the model).
    pub latency_rf_to_screen: Option<Rational>,
    /// End-to-end latency bound RF -> speakers, in seconds.
    pub latency_rf_to_speakers: Option<Rational>,
    /// Number of CTA components in the derived model.
    pub cta_components: usize,
    /// Number of CTA connections in the derived model.
    pub cta_connections: usize,
}

impl PalAnalysis {
    /// A channel's rate in Hz as `f64` (reporting boundary), or NaN when the
    /// channel is unknown.
    pub fn rate_hz(&self, name: &str) -> f64 {
        self.channel_rates
            .get(name)
            .map(|r| r.to_f64())
            .unwrap_or(f64::NAN)
    }

    /// The RF -> screen latency in seconds as `f64` (reporting boundary).
    pub fn latency_rf_to_screen_seconds(&self) -> f64 {
        self.latency_rf_to_screen
            .map(|l| l.to_f64())
            .unwrap_or(f64::NAN)
    }

    /// The RF -> speakers latency in seconds as `f64` (reporting boundary).
    pub fn latency_rf_to_speakers_seconds(&self) -> f64 {
        self.latency_rf_to_speakers
            .map(|l| l.to_f64())
            .unwrap_or(f64::NAN)
    }

    /// The audio/video skew implied by the analysis (seconds, exact); the
    /// program requires the sinks to *start* in sync, so the bound on the
    /// difference of the two path latencies must be small. `None` when
    /// either latency is unavailable.
    pub fn av_skew(&self) -> Option<Rational> {
        match (self.latency_rf_to_screen, self.latency_rf_to_speakers) {
            (Some(a), Some(b)) => Some((a - b).abs()),
            _ => None,
        }
    }

    /// The skew in seconds as `f64` (reporting boundary).
    pub fn av_skew_seconds(&self) -> f64 {
        self.av_skew().map(|s| s.to_f64()).unwrap_or(f64::NAN)
    }
}

/// Compile and analyse the PAL decoder, returning both the raw compiled
/// program and the summarised analysis.
pub fn analyze_pal() -> Result<(CompiledProgram, PalAnalysis), CompileError> {
    let registry = pal_registry();
    let compiled = compile(PAL_DECODER_OIL, &registry, &CompilerOptions::default())?;

    let mut channel_rates = BTreeMap::new();
    for ch in &compiled.analyzed.graph.channels {
        let suffix = ch.name.rsplit('.').next().unwrap_or(&ch.name).to_string();
        if let Some(rate) = compiled.channel_rate_exact(&suffix) {
            channel_rates.insert(suffix, rate);
        }
    }
    let mut channel_capacities = BTreeMap::new();
    for (name, cap) in &compiled.buffers.channels {
        let suffix = name.rsplit('.').next().unwrap_or(name).to_string();
        channel_capacities.insert(suffix, *cap);
    }

    let latency_rf_to_screen = compiled.latency_between_exact("rf", "screen");
    let latency_rf_to_speakers = compiled.latency_between_exact("rf", "speakers");

    let analysis = PalAnalysis {
        channel_rates,
        channel_capacities,
        latency_rf_to_screen,
        latency_rf_to_speakers,
        cta_components: compiled.derived.cta.component_count(),
        cta_connections: compiled.derived.cta.connection_count(),
    };
    Ok((compiled, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pal_decoder_is_schedulable() {
        let (compiled, analysis) = analyze_pal().expect("the PAL decoder must be accepted");
        assert!(compiled.consistency.min_slack().unwrap() >= Rational::ZERO);
        assert!(analysis.cta_components > 10);
        assert!(analysis.cta_connections > 20);
    }

    #[test]
    fn channel_rates_match_the_paper_exactly() {
        let (_, analysis) = analyze_pal().unwrap();
        let rate = |name: &str| analysis.channel_rates[name];
        // RF at 6.4 MS/s; video FIFO at 4 MS/s (10/16 conversion); audio FIFO
        // at 256 kS/s (1/25) feeding the Audio black box which outputs
        // 32 kS/s; the sinks at their declared rates. All exact.
        assert_eq!(rate("rf"), Rational::from_int(6_400_000));
        assert_eq!(rate("vid"), Rational::from_int(4_000_000));
        assert_eq!(rate("aud"), Rational::from_int(256_000));
        assert_eq!(rate("screen"), Rational::from_int(4_000_000));
        assert_eq!(rate("speakers"), Rational::from_int(32_000));
        // Intermediate FIFOs inside the splitter run at the RF rate.
        assert_eq!(rate("mas"), Rational::from_int(6_400_000));
        assert_eq!(rate("mvs"), Rational::from_int(6_400_000));
    }

    #[test]
    fn rate_conversion_factors_match_the_paper_exactly() {
        let (_, analysis) = analyze_pal().unwrap();
        let rate = |name: &str| analysis.channel_rates[name];
        assert_eq!(rate("aud") / rate("mas"), Rational::new(1, 25));
        assert_eq!(rate("vid") / rate("mvs"), Rational::new(10, 16));
        assert_eq!(rate("speakers") / rate("aud"), Rational::new(1, 8));
    }

    #[test]
    fn buffer_capacities_are_sufficient_and_modest() {
        let (compiled, analysis) = analyze_pal().unwrap();
        for (name, cap) in &analysis.channel_capacities {
            assert!(*cap >= 1, "channel {name} has no capacity");
            assert!(*cap <= 4096, "channel {name} implausibly large: {cap}");
        }
        // Applying the capacities keeps the model consistent (already part of
        // compilation, re-checked here explicitly).
        assert!(compiled.sized_model.consistency_at_maximal_rates().is_ok());
    }

    #[test]
    fn audio_video_skew_is_bounded() {
        let (_, analysis) = analyze_pal().unwrap();
        let skew = analysis.av_skew().expect("both path latencies exist");
        // The zero-skew constraint pins both sink start times; the two
        // analysed path latencies may differ by at most a millisecond of
        // pipeline depth.
        assert!(skew <= Rational::new(1, 1000), "skew {skew}");
    }

    #[test]
    fn analysis_is_deterministic() {
        // Exact arithmetic end to end: analysing twice gives identical rates,
        // capacities and latencies, bit for bit.
        let (_, first) = analyze_pal().unwrap();
        let (_, second) = analyze_pal().unwrap();
        assert_eq!(first.channel_rates, second.channel_rates);
        assert_eq!(first.channel_capacities, second.channel_capacities);
        assert_eq!(first.latency_rf_to_screen, second.latency_rf_to_screen);
        assert_eq!(first.latency_rf_to_speakers, second.latency_rf_to_speakers);
    }

    #[test]
    fn slower_processors_are_rejected() {
        // Scaling every response time up by 100x makes the video path miss
        // the 4 MS/s display rate: the compiler must reject the program.
        let registry = oil_dsp::dsp_registry(100.0);
        let result = compile(PAL_DECODER_OIL, &registry, &CompilerOptions::default());
        assert!(
            result.is_err(),
            "a 100x slower platform cannot sustain the PAL rates"
        );
    }
}
