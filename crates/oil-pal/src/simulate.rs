//! Simulation of the compiled PAL decoder.
//!
//! The analysed buffer capacities and rates are only useful if an execution
//! honouring them actually meets the real-time constraints. This module runs
//! the compiled decoder on the discrete-event simulator and checks that
//!
//! * neither sink ever misses a deadline and the RF source never overflows,
//! * the measured sink throughputs match 4 MS/s and 32 kS/s,
//! * no buffer exceeds its sized capacity.

use crate::analysis::analyze_pal;
use crate::program::pal_registry;
use oil_compiler::CompileError;
use oil_sim::{build_simulation_with_registry, picos, SimMetrics, SimulationConfig};
use serde::{Deserialize, Serialize};

/// Summary of a PAL decoder simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PalSimulationReport {
    /// Raw simulator metrics.
    pub metrics: SimMetrics,
    /// Measured display throughput in samples per second.
    pub screen_rate: f64,
    /// Measured speaker throughput in samples per second.
    pub speaker_rate: f64,
    /// Worst observed end-to-end latency RF sample -> display, in seconds.
    pub screen_latency: f64,
    /// Worst observed end-to-end latency RF sample -> speakers, in seconds.
    pub speaker_latency: f64,
}

impl PalSimulationReport {
    /// True if the simulated execution met every real-time constraint.
    pub fn meets_constraints(&self) -> bool {
        self.metrics.meets_real_time_constraints()
    }
}

/// Compile, analyse and simulate the PAL decoder for `duration_seconds` of
/// simulated time.
pub fn simulate_pal(duration_seconds: f64) -> Result<PalSimulationReport, CompileError> {
    let (compiled, _analysis) = analyze_pal()?;
    let registry = pal_registry();
    let mut net = build_simulation_with_registry(&compiled, &registry);
    let metrics = net.run(
        picos(duration_seconds),
        &SimulationConfig {
            cores: 0,
            warmup_ticks: 64,
        },
    );
    let screen_rate = metrics.sink_throughput("screen").unwrap_or(0.0);
    let speaker_rate = metrics.sink_throughput("speakers").unwrap_or(0.0);
    let screen_latency = metrics.sink_max_latency("screen").unwrap_or(f64::NAN);
    let speaker_latency = metrics.sink_max_latency("speakers").unwrap_or(f64::NAN);
    Ok(PalSimulationReport {
        metrics,
        screen_rate,
        speaker_rate,
        screen_latency,
        speaker_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_decoder_meets_real_time_constraints() {
        // 2 ms of simulated time is 12 800 RF samples, 8 000 display samples
        // and 64 speaker samples: enough to reach steady state.
        let report = simulate_pal(2e-3).unwrap();
        assert!(
            report.meets_constraints(),
            "misses={} overflows={}",
            report.metrics.total_misses(),
            report.metrics.total_overflows()
        );
    }

    #[test]
    fn simulated_throughputs_match_declared_rates() {
        let report = simulate_pal(2e-3).unwrap();
        assert!(
            (report.screen_rate - 4.0e6).abs() / 4.0e6 < 0.05,
            "screen rate {}",
            report.screen_rate
        );
        assert!(
            (report.speaker_rate - 32e3).abs() / 32e3 < 0.10,
            "speaker rate {}",
            report.speaker_rate
        );
    }

    #[test]
    fn buffers_stay_within_sized_capacities() {
        let report = simulate_pal(1e-3).unwrap();
        for (name, cap, max_occ) in &report.metrics.buffers {
            assert!(max_occ <= cap, "buffer {name} exceeded its sized capacity");
        }
    }

    #[test]
    fn latencies_are_bounded() {
        let report = simulate_pal(2e-3).unwrap();
        assert!(report.screen_latency.is_finite());
        assert!(report.speaker_latency.is_finite());
        // Both paths deliver samples within a millisecond on the simulated
        // platform (the audio path is the slower one: 25*8 samples per
        // speaker sample at 6.4 MS/s is 0.3125 ms of accumulation).
        assert!(
            report.screen_latency < 1e-3,
            "screen latency {}",
            report.screen_latency
        );
        assert!(
            report.speaker_latency < 2e-3,
            "speaker latency {}",
            report.speaker_latency
        );
    }
}
