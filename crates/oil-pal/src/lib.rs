//! The PAL video/audio decoder case study (Section VI of the paper).
//!
//! A PAL decoder receives a broadcast RF signal sampled at 6.4 MS/s, splits
//! it into a video and an audio band, resamples the video path by 10/16 to
//! 4 MS/s for the display and decimates the audio path by 25 and then by 8 to
//! 32 kS/s for the speakers. Video and audio must stay in sync, expressed in
//! OIL as a zero-latency-difference constraint between the two sinks.
//!
//! This crate contains:
//!
//! * [`program::PAL_DECODER_OIL`] — the OIL source of the paper's Fig. 11,
//! * [`analysis`] — compilation, CTA-model statistics, buffer capacities and
//!   the checks that reproduce the paper's Fig. 12 claims,
//! * [`native`] — a functional reference implementation of the same signal
//!   path built from the `oil-dsp` kernels,
//! * [`simulate`] — execution of the compiled decoder on the discrete-event
//!   simulator and validation of the analysed bounds.

pub mod analysis;
pub mod native;
pub mod program;
pub mod simulate;

pub use analysis::{analyze_pal, PalAnalysis};
pub use native::NativePalDecoder;
pub use program::{pal_registry, PAL_DECODER_OIL};
pub use simulate::{simulate_pal, PalSimulationReport};
