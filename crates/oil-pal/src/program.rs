//! The OIL source of the PAL decoder (paper Fig. 11) and its function
//! registry.

use oil_lang::FunctionRegistry;

/// The PAL decoder as a hierarchical OIL program, following the paper's
/// Fig. 11: a `Splitter` parallel module containing the two rate-conversion
/// chains, the black-box `Video` and `Audio` modules, the 6.4 MS/s RF source,
/// the 4 MS/s display sink and the 32 kS/s speaker sink, and the zero
/// audio/video skew constraint expressed as a pair of latency constraints.
pub const PAL_DECODER_OIL: &str = r#"
// Audio sample-rate converter: low-pass + decimate by 25 (6.4 MS/s -> 256 kS/s).
mod seq SRC_A(sample si, out sample so){
    loop{
        LPF(si:25, out so);
    } while(1);
}

// Video resampler: 16 input samples become 10 output samples (6.4 MS/s -> 4 MS/s).
mod seq SRC_V(sample si, out sample so){
    loop{
        resamp(si:16, out so:10);
    } while(1);
}

// Mixes the audio carrier down to zero.
mod seq Mix_A(sample rf, out sample mas){
    loop{
        mix(rf, out mas);
    } while(1);
}

// Removes the audio band from the video signal.
mod seq LPF_V(sample rf, out sample mvs){
    loop{
        lpf_v(rf, out mvs);
    } while(1);
}

// The splitter: both rate-conversion chains execute concurrently.
mod par Splitter(sample rf, out sample v, out sample a){
    fifo sample mas, mvs;
    Mix_A(rf, out mas) || SRC_A(mas, out a) ||
    LPF_V(rf, out mvs) || SRC_V(mvs, out v)
}

// Top level: RF front end, display and speaker sinks, black-box Video and
// Audio modules, and the zero audio/video skew requirement.
mod par {
    fifo sample vid, aud;
    source sample rf = receiveRF() @ 6.4 MHz;
    sink sample screen = display() @ 4 MHz;
    sink sample speakers = sound() @ 32 kHz;
    start screen 0 ms after speakers;
    start screen 0 ms before speakers;
    Splitter(rf, out vid, out aud) ||
    Video(vid, out screen) || Audio(aud, out speakers)
}
"#;

/// The registry describing the decoder's kernels and the black-box `Video`
/// and `Audio` interfaces to the compiler (re-exported from `oil-dsp`).
pub fn pal_registry() -> FunctionRegistry {
    oil_dsp::dsp_registry(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_lang::ast::ModuleKind;

    #[test]
    fn pal_program_parses() {
        let p = oil_lang::parse_program(PAL_DECODER_OIL).unwrap();
        assert_eq!(p.modules.len(), 6);
        assert_eq!(p.module("Splitter").unwrap().kind, ModuleKind::Par);
        assert!(p.top_module().unwrap().name.is_none());
    }

    #[test]
    fn pal_program_passes_semantic_analysis() {
        let analyzed = oil_lang::frontend(PAL_DECODER_OIL, &pal_registry()).unwrap();
        // Leaf instances: Mix_A, SRC_A, LPF_V, SRC_V, Video, Audio.
        assert_eq!(analyzed.graph.instances.len(), 6);
        // Channels: mas, mvs, vid, aud, rf, screen, speakers.
        assert_eq!(analyzed.graph.channels.len(), 7);
        assert_eq!(analyzed.graph.sources().count(), 1);
        assert_eq!(analyzed.graph.sinks().count(), 2);
        assert_eq!(analyzed.graph.latencies.len(), 2);
        // The two black boxes are recognised from the registry.
        let bb: Vec<&str> = analyzed
            .graph
            .instances
            .iter()
            .filter(|i| i.black_box)
            .map(|i| i.module_name.as_str())
            .collect();
        assert_eq!(bb, vec!["Video", "Audio"]);
    }

    #[test]
    fn rf_source_rate_is_6_4_mhz() {
        let analyzed = oil_lang::frontend(PAL_DECODER_OIL, &pal_registry()).unwrap();
        let (_, rf) = analyzed.graph.channel_named("rf").unwrap();
        assert_eq!(rf.kind.rate_hz(), Some(6.4e6));
        let (_, screen) = analyzed.graph.channel_named("screen").unwrap();
        assert_eq!(screen.kind.rate_hz(), Some(4e6));
        let (_, speakers) = analyzed.graph.channel_named("speakers").unwrap();
        assert_eq!(speakers.kind.rate_hz(), Some(32e3));
    }
}
