//! The end-to-end compilation pipeline.
//!
//! [`compile`] runs the whole flow of the paper on one OIL source text:
//! front end → task-graph extraction → CTA derivation → consistency check →
//! buffer sizing → code generation, and returns everything the examples,
//! benches and the simulator need in one [`CompiledProgram`].

use crate::buffers::{plan_buffers, BufferPlan};
use crate::codegen::{generate_module_code, GeneratedCode};
use crate::derive::{derive_cta_model, DerivedModel};
use oil_cta::{BufferSizingError, ConsistencyResult, CtaModel, Rational};
use oil_lang::registry::FunctionRegistry;
use oil_lang::sema::AnalyzedProgram;
use oil_lang::Diagnostic;

/// Options controlling compilation.
#[derive(Debug, Clone, Default)]
pub struct CompilerOptions {
    /// Skip buffer sizing and keep whatever capacities the model starts with
    /// (used by benches that measure sizing separately).
    pub skip_buffer_sizing: bool,
    /// Skip code generation.
    pub skip_codegen: bool,
}

/// A fully compiled OIL program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The analysed program (AST + flattened application graph).
    pub analyzed: AnalyzedProgram,
    /// The derived CTA model and its lookup tables.
    pub derived: DerivedModel,
    /// The CTA model with sized buffer capacities applied.
    pub sized_model: CtaModel,
    /// The consistency result of the sized model (rates and offsets).
    pub consistency: ConsistencyResult,
    /// Buffer capacities for channels and local variables.
    pub buffers: BufferPlan,
    /// Generated task code per non-black-box instance.
    pub generated: Vec<GeneratedCode>,
}

impl CompiledProgram {
    /// The exact rate (events/s) at which a channel's data port transfers
    /// data, looked up by channel name suffix.
    pub fn channel_rate_exact(&self, name: &str) -> Option<Rational> {
        let (ci, _) = self.analyzed.graph.channel_named(name)?;
        let ports = &self.derived.channel_ports[ci];
        let port = ports
            .data_out
            .or_else(|| ports.reader_in.first().copied())?;
        Some(self.consistency.rates[port])
    }

    /// As [`Self::channel_rate_exact`], converted to `f64` at the API
    /// boundary (lossless by construction for rates that fit a double).
    pub fn channel_rate(&self, name: &str) -> Option<f64> {
        self.channel_rate_exact(name).map(|r| r.to_f64())
    }

    /// Exact end-to-end latency bound (seconds) from a source channel to a
    /// sink channel along the critical path of the sized model.
    pub fn latency_between_exact(&self, source: &str, sink: &str) -> Option<Rational> {
        let (si, _) = self.analyzed.graph.channel_named(source)?;
        let (ki, _) = self.analyzed.graph.channel_named(sink)?;
        let from = self.derived.channel_ports[si].data_out?;
        let to = *self.derived.channel_ports[ki].reader_in.first()?;
        oil_cta::check_latency_path(&self.sized_model, &self.consistency, from, to)
            .map(|r| r.latency)
    }

    /// As [`Self::latency_between_exact`], converted to `f64` at the API
    /// boundary.
    pub fn latency_between(&self, source: &str, sink: &str) -> Option<f64> {
        self.latency_between_exact(source, sink).map(|r| r.to_f64())
    }
}

/// Why compilation failed.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Parse or semantic errors.
    Frontend(Vec<Diagnostic>),
    /// The temporal constraints cannot be satisfied (rate conflicts,
    /// unattainable source/sink rates or latency bounds).
    Temporal(BufferSizingError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Frontend(diags) => {
                writeln!(f, "front-end errors:")?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            CompileError::Temporal(e) => write!(f, "temporal analysis failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile an OIL program from source text.
pub fn compile(
    source: &str,
    registry: &FunctionRegistry,
    options: &CompilerOptions,
) -> Result<CompiledProgram, CompileError> {
    let analyzed = oil_lang::frontend(source, registry).map_err(CompileError::Frontend)?;
    let derived = derive_cta_model(&analyzed, registry);

    let (buffers, sized_model) = if options.skip_buffer_sizing {
        (
            BufferPlan {
                channels: Default::default(),
                locals: Default::default(),
                iterations: 0,
            },
            derived.cta.clone(),
        )
    } else {
        plan_buffers(&analyzed, &derived).map_err(CompileError::Temporal)?
    };

    // Rates not pinned by a source or sink settle at their maximal achievable
    // value (the paper's consistency algorithm reports exactly these, and the
    // exact-rational implementation computes them without any tolerance).
    let consistency = sized_model
        .consistency_at_maximal_rates()
        .map_err(|e| CompileError::Temporal(BufferSizingError::Unfixable(e)))?;

    let generated = if options.skip_codegen {
        Vec::new()
    } else {
        derived
            .task_graphs
            .iter()
            .zip(&analyzed.graph.instances)
            .filter_map(|(tg, inst)| tg.as_ref().map(|tg| generate_module_code(&inst.path, tg)))
            .collect()
    };

    Ok(CompiledProgram {
        analyzed,
        derived,
        sized_model,
        consistency,
        buffers,
        generated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_lang::registry::FunctionSignature;

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "h", "k", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-6));
        }
        r
    }

    const FIG6: &str = r#"
        mod seq B(int a, out int z){ loop{ f(a, out z); } while(1); }
        mod seq C(int a, int z, out int b){ loop{ g(a, z, out b); } while(1); }
        mod par A(int a, out int b){
            fifo int z;
            B(a, out z) || C(a, z, out b)
        }
        mod par D(){
            source int x = src() @ 1 kHz;
            sink int y = snk() @ 1 kHz;
            start x 5 ms before y;
            A(x, out y)
        }
    "#;

    #[test]
    fn compile_fig6_end_to_end() {
        let compiled = compile(FIG6, &registry(), &CompilerOptions::default()).unwrap();
        // Channels: x (source), y (sink), z (fifo) all sized.
        assert_eq!(compiled.buffers.channels.len(), 3);
        // Source and sink run at exactly 1 kHz — exact rate equality, no
        // epsilon comparisons.
        assert_eq!(
            compiled.channel_rate_exact("x"),
            Some(Rational::from_int(1000))
        );
        assert_eq!(
            compiled.channel_rate_exact("y"),
            Some(Rational::from_int(1000))
        );
        assert_eq!(compiled.channel_rate("x"), Some(1000.0));
        assert_eq!(compiled.channel_rate("y"), Some(1000.0));
        // The end-to-end latency respects the 5 ms constraint, exactly.
        let latency = compiled.latency_between_exact("x", "y").unwrap();
        assert!(latency <= Rational::new(5, 1000), "latency {latency}");
        // Two generated modules (B and C).
        assert_eq!(compiled.generated.len(), 2);
    }

    #[test]
    fn compile_rejects_frontend_errors() {
        let err = compile(
            "mod seq A(out int a){ f(out a) }",
            &registry(),
            &CompilerOptions::default(),
        );
        assert!(matches!(err, Err(CompileError::Frontend(_))));
        let err2 = compile(
            "mod seq A(int a, out int b){ loop{ f(a); } while(1); }",
            &registry(),
            &CompilerOptions::default(),
        );
        assert!(matches!(err2, Err(CompileError::Frontend(_))));
    }

    #[test]
    fn compile_rejects_unattainable_latency() {
        let mut reg = registry();
        reg.register(FunctionSignature::pure("slow", 50e-3));
        let src = r#"
            mod seq W(int a, out int b){ loop{ slow(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 10 Hz;
                sink int y = snk() @ 10 Hz;
                start x 5 ms before y;
                W(x, out y)
            }
        "#;
        assert!(matches!(
            compile(src, &reg, &CompilerOptions::default()),
            Err(CompileError::Temporal(_))
        ));
    }

    #[test]
    fn options_skip_stages() {
        let opts = CompilerOptions {
            skip_buffer_sizing: false,
            skip_codegen: true,
        };
        let compiled = compile(FIG6, &registry(), &opts).unwrap();
        assert!(compiled.generated.is_empty());
    }

    #[test]
    fn fig2c_rates_follow_colon_notation() {
        let src = r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        // Channel x is written 3-at-a-time by A and read 2-at-a-time by B;
        // both see *exactly* the same token rate.
        let rx = compiled.channel_rate_exact("x").unwrap();
        let ry = compiled.channel_rate_exact("y").unwrap();
        assert!(rx.is_positive() && ry.is_positive());
        assert_eq!(rx, ry, "token rates must match exactly, got {rx} vs {ry}");
    }

    #[test]
    fn compilation_is_deterministic() {
        // Exact arithmetic end to end: recompiling yields bit-identical
        // consistency results and buffer plans.
        let first = compile(FIG6, &registry(), &CompilerOptions::default()).unwrap();
        for _ in 0..3 {
            let again = compile(FIG6, &registry(), &CompilerOptions::default()).unwrap();
            assert_eq!(again.consistency, first.consistency);
            assert_eq!(again.buffers, first.buffers);
        }
    }
}
