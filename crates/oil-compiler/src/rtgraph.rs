//! The runtime graph: the engine-consumable view of a compiled program.
//!
//! Both execution engines — the discrete-event simulator (`oil-sim`) and the
//! multi-threaded runtime (`oil-rt`) — execute the *same* flat graph of
//! buffers, data-driven nodes and time-triggered sources/sinks. This module
//! lowers a [`CompiledProgram`] into that graph once, so the engines cannot
//! diverge in how they interpret the compiler's output and the differential
//! harness (`tests/runtime_differential.rs`) tests *scheduling semantics*,
//! not graph construction:
//!
//! * every runnable task of every sequential module becomes one node (see
//!   [`crate::parallelize::runnable_tasks`]; prologue statements run before
//!   start-up and survive only as initial tokens);
//! * every black box becomes one node with its registered interface rates;
//! * every channel becomes one buffer **per reader** — multi-reader channels
//!   (such as the PAL decoder's RF source feeding both splitter branches)
//!   are broadcast: each reader observes every token, matching the dataflow
//!   semantics the CTA analysis assumes;
//! * every local variable becomes one buffer shared by the tasks of its
//!   module;
//! * capacities come from CTA buffer sizing, widened by the engines' atomic
//!   burst transfer plus one slack slot (the analysis assumes production
//!   spread over a firing, the engines commit at completion);
//! * all times are **exact rational seconds** — quantisation onto an
//!   engine's clock grid happens in the engine, through the checked
//!   conversions of `oil_sim::time`.

use crate::pipeline::CompiledProgram;
use oil_dataflow::define_index_type;
use oil_dataflow::index::{Idx, IndexVec};
use oil_dataflow::taskgraph::BufferId;
use oil_dataflow::unionfind::UnionFind;
use oil_dataflow::{ChannelId, Rational};
use oil_lang::sema::{ChannelKind, InstanceId};
use oil_lang::FunctionRegistry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

define_index_type! {
    /// A buffer of the runtime graph.
    pub struct RtBufferId = "rb";
}

define_index_type! {
    /// A data-driven node of the runtime graph.
    pub struct RtNodeId = "rn";
}

define_index_type! {
    /// A time-triggered source of the runtime graph.
    pub struct RtSourceId = "rsrc";
}

define_index_type! {
    /// A time-triggered sink of the runtime graph.
    pub struct RtSinkId = "rsnk";
}

/// Default capacity for buffers the sizing pass did not need to grow.
pub const DEFAULT_LOCAL_CAPACITY: usize = 4;

/// Extra slack added to every engine buffer: the CTA capacities are
/// sufficient under the model's scheduling assumptions; the engines'
/// data-driven schedule differs slightly (production at completion), so one
/// extra slot avoids spurious overflows without masking real undersizing.
pub const CAPACITY_SLACK: usize = 1;

/// A bounded buffer of the runtime graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtBuffer {
    /// Buffer name: the channel name for single-reader channels,
    /// `<channel>-><reader path>` for replicated multi-reader channels, or
    /// `<instance path>.<variable>` for locals.
    pub name: String,
    /// Capacity in values (CTA capacity + burst headroom + slack).
    pub capacity: usize,
    /// Values present before start-up (written by prologue statements).
    pub initial_tokens: usize,
}

/// A data-driven node: fires when every read has enough values and every
/// write has enough space, occupying its processor for its response time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtNode {
    /// Node name (`<instance path>.<task>` or the black box's path).
    pub name: String,
    /// The coordinated function this node executes per firing.
    pub function: String,
    /// Worst-case response time of one firing, in exact seconds.
    pub response: Rational,
    /// `(buffer, values per firing)` consumed at the start of a firing.
    pub reads: Vec<(RtBufferId, usize)>,
    /// `(buffer, values per firing)` committed at the end of a firing.
    pub writes: Vec<(RtBufferId, usize)>,
}

/// A time-triggered source broadcasting one sample per period to every
/// reader of its channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtSource {
    /// Source name (`src_<function>_<channel>`).
    pub name: String,
    /// The environment function producing the samples.
    pub function: String,
    /// One destination buffer per reader of the source channel.
    pub outputs: Vec<RtBufferId>,
    /// Sampling period in exact seconds.
    pub period: Rational,
}

/// A time-triggered sink draining one value per period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtSink {
    /// Sink name (`snk_<function>_<channel>`).
    pub name: String,
    /// The environment function consuming the samples.
    pub function: String,
    /// The buffer the sink drains.
    pub input: RtBufferId,
    /// Consumption period in exact seconds.
    pub period: Rational,
}

/// The engine-agnostic runtime graph of a compiled program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RtGraph {
    /// All buffers.
    pub buffers: IndexVec<RtBufferId, RtBuffer>,
    /// All data-driven nodes.
    pub nodes: IndexVec<RtNodeId, RtNode>,
    /// All time-triggered sources.
    pub sources: IndexVec<RtSourceId, RtSource>,
    /// All time-triggered sinks.
    pub sinks: IndexVec<RtSinkId, RtSink>,
}

/// A destination of a channel: one of its reading instances, or the
/// time-triggered sink draining it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dest {
    Reader(InstanceId),
    SinkDriver,
}

/// Lower a compiled program to its runtime graph, treating any black-box
/// modules as single-rate nodes with a 1 µs response time. Use
/// [`lower_with_registry`] to supply their real interfaces.
pub fn lower(compiled: &CompiledProgram) -> RtGraph {
    lower_with_registry(compiled, &FunctionRegistry::new())
}

/// Lower a compiled program to its runtime graph, using `registry` to obtain
/// the consumption/production rates and response times of black-box modules
/// (e.g. the PAL decoder's `Video` and `Audio` modules).
pub fn lower_with_registry(compiled: &CompiledProgram, registry: &FunctionRegistry) -> RtGraph {
    let mut rt = RtGraph::default();
    let graph = &compiled.analyzed.graph;

    // Per-firing burst size of an instance on a channel (the colon notation
    // of sequential modules or a black box's interface counts).
    let burst = |instance: Option<InstanceId>, channel: ChannelId| -> usize {
        let Some(ii) = instance else { return 1 };
        let inst = &graph.instances[ii];
        let Some(binding) = inst.bindings.iter().find(|b| b.channel == channel) else {
            return 1;
        };
        match &compiled.derived.task_graphs[ii] {
            Some(tg) => tg
                .buffer_by_name(&binding.param)
                .map(|b| {
                    tg.tasks
                        .iter()
                        .flat_map(|t| t.reads.iter().chain(t.writes.iter()))
                        .filter(|a| a.buffer == b)
                        .map(|a| a.count as usize)
                        .max()
                        .unwrap_or(1)
                })
                .unwrap_or(1),
            None => registry
                .black_box(&inst.module_name)
                .map(|bb| {
                    let position = inst
                        .bindings
                        .iter()
                        .filter(|b| b.out == binding.out)
                        .position(|b| b.channel == channel)
                        .unwrap_or(0);
                    let counts = if binding.out {
                        &bb.production
                    } else {
                        &bb.consumption
                    };
                    counts.get(position).copied().unwrap_or(1).max(1) as usize
                })
                .unwrap_or(1),
        }
    };

    // One buffer per (channel, destination): every reader of a multi-reader
    // channel observes every token. A channel nobody reads still gets one
    // buffer so its writer has somewhere to commit.
    let mut channel_dests: IndexVec<ChannelId, Vec<(Dest, RtBufferId)>> =
        IndexVec::with_capacity(graph.channels.len());
    for (ci, ch) in graph.channels.iter_enumerated() {
        let write_burst = burst(ch.writer, ci);
        let mut dests: Vec<Dest> = ch.readers.iter().map(|&r| Dest::Reader(r)).collect();
        if ch.kind.is_sink() {
            dests.push(Dest::SinkDriver);
        }
        let replicated = dests.len() > 1;
        let initial = initial_tokens_for_channel(compiled, ci);
        let mut bound = Vec::with_capacity(dests.len().max(1));
        let add_dest = |dest: Dest, rt: &mut RtGraph| {
            let read_burst = match dest {
                Dest::Reader(r) => burst(Some(r), ci),
                Dest::SinkDriver => 1,
            };
            // The engines commit a firing's whole write burst atomically at
            // completion (the CTA model assumes element-wise production
            // spread over the firing), so a buffer needs room for *two*
            // write bursts — the committed one still draining plus the next
            // one in flight, classic double buffering — and one read burst,
            // on top of whatever the CTA sizing computed. Without the second
            // write burst a multi-rate producer serialises against its
            // consumer and the pipeline loses throughput it analytically
            // has (visible as RF overflows in the PAL decoder).
            let capacity = (compiled
                .buffers
                .channels
                .get(&ch.name)
                .copied()
                .unwrap_or(DEFAULT_LOCAL_CAPACITY as u64) as usize)
                .max(2 * write_burst + read_burst)
                + CAPACITY_SLACK;
            let name = if replicated {
                match dest {
                    Dest::Reader(r) => format!("{}->{}", ch.name, graph.instances[r].path),
                    Dest::SinkDriver => format!("{}->sink", ch.name),
                }
            } else {
                ch.name.clone()
            };
            let id = rt.buffers.push(RtBuffer {
                name,
                capacity: capacity.max(initial).max(1),
                initial_tokens: initial,
            });
            (dest, id)
        };
        if dests.is_empty() {
            // A channel nobody reads: keep one buffer so the writer has
            // somewhere to commit (and occupancy shows up in metrics). The
            // `SinkDriver` tag is inert here — no sink drains a non-sink
            // channel — but lets `writer_buffers` find the buffer.
            bound.push(add_dest(Dest::SinkDriver, &mut rt));
        } else {
            for d in dests {
                let entry = add_dest(d, &mut rt);
                bound.push(entry);
            }
        }
        channel_dests.push(bound);

        match &ch.kind {
            ChannelKind::Source { func, rate_hz } => {
                let outputs = channel_dests[ci].iter().map(|&(_, b)| b).collect();
                rt.sources.push(RtSource {
                    name: format!("src_{func}_{}", ch.name),
                    function: func.clone(),
                    outputs,
                    period: period_seconds(*rate_hz),
                });
            }
            ChannelKind::Sink { func, rate_hz } => {
                let input = channel_dests[ci]
                    .iter()
                    .find(|(d, _)| *d == Dest::SinkDriver)
                    .map(|&(_, b)| b)
                    .expect("sink channels always have a sink-driver destination");
                rt.sinks.push(RtSink {
                    name: format!("snk_{func}_{}", ch.name),
                    function: func.clone(),
                    input,
                    period: period_seconds(*rate_hz),
                });
            }
            ChannelKind::Fifo => {}
        }
    }

    // The buffers a given instance reads from / writes to on a channel.
    let reader_buffer = |instance: InstanceId, ci: ChannelId| -> Option<RtBufferId> {
        channel_dests[ci]
            .iter()
            .find(|(d, _)| *d == Dest::Reader(instance))
            .map(|&(_, b)| b)
    };
    let writer_buffers =
        |ci: ChannelId| -> Vec<RtBufferId> { channel_dests[ci].iter().map(|&(_, b)| b).collect() };

    // Instances: tasks of sequential modules, or a single node per black box.
    for (ii, inst) in graph.instances.iter_enumerated() {
        match &compiled.derived.task_graphs[ii] {
            Some(tg) => {
                // Local buffers for this instance.
                let mut local_buffer: BTreeMap<BufferId, RtBufferId> = BTreeMap::new();
                for (bi, b) in tg.buffers.iter_enumerated() {
                    if b.stream.is_some() {
                        continue;
                    }
                    let name = format!("{}.{}", inst.path, b.name);
                    let capacity = compiled
                        .buffers
                        .locals
                        .get(&name)
                        .copied()
                        .unwrap_or(DEFAULT_LOCAL_CAPACITY as u64)
                        as usize
                        + CAPACITY_SLACK;
                    let initial = b.initial_tokens as usize;
                    local_buffer.insert(
                        bi,
                        rt.buffers.push(RtBuffer {
                            name,
                            capacity: capacity.max(initial).max(1),
                            initial_tokens: initial,
                        }),
                    );
                }
                // A task-graph buffer read maps to a local buffer or to this
                // instance's replica of the bound channel; a write maps to
                // the local buffer or to *every* replica of the channel.
                let channel_of = |bi: BufferId| -> Option<ChannelId> {
                    let stream = tg.buffers[bi].stream.as_ref()?;
                    inst.bindings
                        .iter()
                        .find(|b| &b.param == stream)
                        .map(|b| b.channel)
                };
                for &ti in &crate::parallelize::runnable_tasks(tg) {
                    let t = &tg.tasks[ti];
                    let reads: Vec<(RtBufferId, usize)> = t
                        .reads
                        .iter()
                        .filter_map(|r| {
                            let b = match local_buffer.get(&r.buffer) {
                                Some(&b) => Some(b),
                                None => channel_of(r.buffer).and_then(|ci| reader_buffer(ii, ci)),
                            }?;
                            Some((b, r.count as usize))
                        })
                        .collect();
                    let mut writes: Vec<(RtBufferId, usize)> = Vec::new();
                    for w in &t.writes {
                        match local_buffer.get(&w.buffer) {
                            Some(&b) => writes.push((b, w.count as usize)),
                            None => {
                                if let Some(ci) = channel_of(w.buffer) {
                                    for b in writer_buffers(ci) {
                                        writes.push((b, w.count as usize));
                                    }
                                }
                            }
                        }
                    }
                    rt.nodes.push(RtNode {
                        name: format!("{}.{}", inst.path, t.name),
                        function: t.function.clone(),
                        response: Rational::from_f64(t.response_time),
                        reads,
                        writes,
                    });
                }
            }
            None => {
                // Black box: one node with the registered interface rates.
                let interface = registry.black_box(&inst.module_name);
                let response =
                    Rational::from_f64(interface.map(|i| i.response_time).unwrap_or(1e-6));
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                let (mut in_idx, mut out_idx) = (0usize, 0usize);
                for b in &inst.bindings {
                    if b.out {
                        let count = interface
                            .and_then(|i| i.production.get(out_idx).copied())
                            .unwrap_or(1)
                            .max(1) as usize;
                        for buf in writer_buffers(b.channel) {
                            writes.push((buf, count));
                        }
                        out_idx += 1;
                    } else {
                        let count = interface
                            .and_then(|i| i.consumption.get(in_idx).copied())
                            .unwrap_or(1)
                            .max(1) as usize;
                        if let Some(buf) = reader_buffer(ii, b.channel) {
                            reads.push((buf, count));
                        }
                        in_idx += 1;
                    }
                }
                rt.nodes.push(RtNode {
                    name: inst.path.clone(),
                    function: inst.module_name.clone(),
                    response,
                    reads,
                    writes,
                });
            }
        }
    }

    rt
}

/// The exact period (seconds) of a declared environment rate.
fn period_seconds(rate_hz: f64) -> Rational {
    Rational::from_f64(rate_hz).recip()
}

// ---------------------------------------------------------------------------
// The batching / conformance plan: scheduling metadata for self-timed
// execution.
// ---------------------------------------------------------------------------

/// Upper bound on planned batch sizes. Batching amortises per-wakeup
/// scheduling overhead; beyond this the latency/buffer-pressure cost of a
/// long burst outweighs the amortisation.
pub const MAX_BATCH: u32 = 64;

/// Scheduling metadata for the self-timed engine (`oil-rt::selftimed`),
/// computed once per graph by [`plan`].
///
/// * **Batch sizes** come from the repetition vector of the graph's SDF
///   view: an actor that fires 200× per graph iteration (e.g. the PAL RF
///   front end against the 32 kHz audio sink) is allowed up to
///   [`MAX_BATCH`] firings per wakeup, so a fast node does not pay one
///   scheduler round-trip per token.
/// * **Serial clusters** restore Kahn-process-network determinism where the
///   lowering produced *contested* buffers (two producers or two consumers
///   on one buffer — the task extraction creates these for modal `if`/
///   `switch` statements, whose branch tasks share their input and output
///   variables). All nodes contending on a buffer are grouped into one
///   cluster, executed serially by one owner with a fixed lowest-id-first
///   preference — the same preference the calendar engine's id-ordered
///   admission scan applies. The plan additionally records whether each
///   cluster is *uniform* (all members exact twins): lowest-id-first is
///   timing-independent for twins, while a non-uniform cluster needs its
///   whole component pinned to one worker (see [`RtPlan::cluster_uniform`]).
/// * **KPN safety**: a graph with no clusters is a true Kahn process
///   network (every buffer single-producer/single-consumer), for which
///   per-buffer value streams are *schedule-invariant* — the property the
///   rate-conformance harness turns into a bit-identity oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtPlan {
    /// Firings allowed per wakeup, per node (clustered nodes are pinned
    /// to 1).
    pub batch: IndexVec<RtNodeId, u32>,
    /// Samples allowed per wakeup, per source.
    pub source_batch: IndexVec<RtSourceId, u32>,
    /// Values drained per wakeup, per sink.
    pub sink_batch: IndexVec<RtSinkId, u32>,
    /// Serial clusters (each with ≥ 2 members, in ascending node order).
    pub clusters: Vec<Vec<RtNodeId>>,
    /// Per cluster: true when every member is an exact *twin* of the others
    /// (identical read and write access lists up to order). For twin
    /// clusters the owner's lowest-id-first discipline is timing-independent
    /// on its own: all members become ready together, so the lowest id wins
    /// at every decision no matter when the owner looks. A non-uniform
    /// cluster (members with disjoint, e.g. mode-gated, inputs) stays
    /// deterministic only if everything feeding it runs on the same worker —
    /// the engine pins such components (see
    /// `oil_rt::selftimed` unit partitioning).
    pub cluster_uniform: Vec<bool>,
    /// The cluster a node belongs to, if any.
    pub cluster_of: IndexVec<RtNodeId, Option<u32>>,
    /// Buffers no node or sink ever reads (the writer still commits into
    /// them; a self-timed engine may drain them instead of blocking).
    pub unread: IndexVec<RtBufferId, bool>,
    /// Buffers whose value streams are **schedule-invariant**: not written
    /// by a clustered node and not (transitively) downstream of one. A
    /// contested merge resolves by arrival order, so everything it feeds
    /// can legitimately differ between a clock-replaying and a free-running
    /// schedule; every other stream is pinned bit-for-bit by KPN
    /// determinism. On a KPN-safe graph every buffer is invariant.
    pub invariant: IndexVec<RtBufferId, bool>,
}

impl RtPlan {
    /// True when the graph is a Kahn process network: every buffer has at
    /// most one producer and one consumer, so per-buffer value streams are
    /// schedule-invariant and the full bit-identity oracle applies.
    pub fn is_kpn_safe(&self) -> bool {
        self.clusters.is_empty()
    }
}

/// Compute the self-timed scheduling plan of a runtime graph.
pub fn plan(graph: &RtGraph) -> RtPlan {
    let n_buffers = graph.buffers.len();
    let n_nodes = graph.nodes.len();

    // Producers/consumers per buffer, deduplicated per node (a node writing
    // one buffer through two ports is still a single producer).
    let mut producers: IndexVec<RtBufferId, Vec<RtNodeId>> =
        IndexVec::from_elem(Vec::new(), n_buffers);
    let mut consumers: IndexVec<RtBufferId, Vec<RtNodeId>> =
        IndexVec::from_elem(Vec::new(), n_buffers);
    let mut source_writes: IndexVec<RtBufferId, bool> = IndexVec::from_elem(false, n_buffers);
    let mut sink_reads: IndexVec<RtBufferId, bool> = IndexVec::from_elem(false, n_buffers);
    for (ni, n) in graph.nodes.iter_enumerated() {
        for &(b, _) in &n.reads {
            if consumers[b].last() != Some(&ni) {
                consumers[b].push(ni);
            }
        }
        for &(b, _) in &n.writes {
            if producers[b].last() != Some(&ni) {
                producers[b].push(ni);
            }
        }
    }
    for s in graph.sources.iter() {
        for &b in &s.outputs {
            source_writes[b] = true;
        }
    }
    for s in graph.sinks.iter() {
        sink_reads[s.input] = true;
    }

    let unread: IndexVec<RtBufferId, bool> = graph
        .buffers
        .indices()
        .map(|b| consumers[b].is_empty() && !sink_reads[b])
        .collect::<Vec<_>>()
        .into();

    // Serial clusters: union-find over nodes contending on a buffer
    // endpoint. (Sources and sinks never contend with nodes: source
    // channels have no writing instance and each sink drains a dedicated
    // replica buffer.)
    let mut uf = UnionFind::new(n_nodes);
    let mut contested: IndexVec<RtBufferId, bool> = IndexVec::from_elem(false, n_buffers);
    for b in graph.buffers.indices() {
        debug_assert!(
            !source_writes[b] || producers[b].is_empty(),
            "a source and a node cannot share a buffer's producer side"
        );
        debug_assert!(
            !sink_reads[b] || consumers[b].is_empty(),
            "a sink and a node cannot share a buffer's consumer side (every \
             sink must drain a dedicated replica)"
        );
        if producers[b].len() > 1 {
            contested[b] = true;
            for w in producers[b].windows(2) {
                uf.union(w[0].index(), w[1].index());
            }
        }
        if consumers[b].len() > 1 {
            contested[b] = true;
            for w in consumers[b].windows(2) {
                uf.union(w[0].index(), w[1].index());
            }
        }
    }
    let mut members: BTreeMap<usize, Vec<RtNodeId>> = BTreeMap::new();
    for ni in graph.nodes.indices() {
        members.entry(uf.find(ni.index())).or_default().push(ni);
    }
    let mut clusters: Vec<Vec<RtNodeId>> = Vec::new();
    let mut cluster_of: IndexVec<RtNodeId, Option<u32>> = IndexVec::from_elem(None, n_nodes);
    for (_, group) in members {
        if group.len() < 2 {
            continue;
        }
        let id = clusters.len() as u32;
        for &ni in &group {
            cluster_of[ni] = Some(id);
        }
        clusters.push(group);
    }
    // Twin detection per cluster: compare the raw access lists (sorted, not
    // aggregated — a node reading one buffer through two ports gates its
    // readiness differently from one reading the sum through a single
    // port).
    type AccessSig = (Vec<(RtBufferId, usize)>, Vec<(RtBufferId, usize)>);
    let access_sig = |ni: RtNodeId| -> AccessSig {
        let mut reads = graph.nodes[ni].reads.clone();
        let mut writes = graph.nodes[ni].writes.clone();
        reads.sort_unstable();
        writes.sort_unstable();
        (reads, writes)
    };
    let cluster_uniform: Vec<bool> = clusters
        .iter()
        .map(|group| {
            let first = access_sig(group[0]);
            group[1..].iter().all(|&ni| access_sig(ni) == first)
        })
        .collect();

    // Batch sizes from the repetition vector of the SDF view. Only
    // uncontested, read buffers become edges; contested buffers would need a
    // multi-producer edge SDF cannot express (their nodes are serialised
    // anyway), and unread buffers impose no rate constraint.
    use oil_dataflow::sdf::SdfGraph;
    let mut sdf = SdfGraph::new();
    let node_actor: Vec<_> = graph
        .nodes
        .iter()
        .map(|n| sdf.add_actor(n.name.clone(), 0.0))
        .collect();
    let source_actor: Vec<_> = graph
        .sources
        .iter()
        .map(|s| sdf.add_actor(s.name.clone(), 0.0))
        .collect();
    let sink_actor: Vec<_> = graph
        .sinks
        .iter()
        .map(|s| sdf.add_actor(s.name.clone(), 0.0))
        .collect();
    let port_count = |ports: &[(RtBufferId, usize)], b: RtBufferId| -> u64 {
        ports
            .iter()
            .filter(|&&(pb, _)| pb == b)
            .map(|&(_, c)| c as u64)
            .sum()
    };
    for (bi, buf) in graph.buffers.iter_enumerated() {
        if contested[bi] || unread[bi] {
            continue;
        }
        let src = if source_writes[bi] {
            graph
                .sources
                .iter_enumerated()
                .find(|(_, s)| s.outputs.contains(&bi))
                .map(|(i, _)| (source_actor[i.index()], 1u64))
        } else {
            producers[bi].first().map(|&ni| {
                (
                    node_actor[ni.index()],
                    port_count(&graph.nodes[ni].writes, bi),
                )
            })
        };
        let dst = if sink_reads[bi] {
            graph
                .sinks
                .iter_enumerated()
                .find(|(_, s)| s.input == bi)
                .map(|(i, _)| (sink_actor[i.index()], 1u64))
        } else {
            consumers[bi].first().map(|&ni| {
                (
                    node_actor[ni.index()],
                    port_count(&graph.nodes[ni].reads, bi),
                )
            })
        };
        if let (Some((sa, prod)), Some((da, cons))) = (src, dst) {
            if prod > 0 && cons > 0 {
                sdf.add_named_edge(&buf.name, sa, da, prod, cons, buf.initial_tokens as u64);
            }
        }
    }
    let q = sdf.repetition_vector().ok();
    let batch_of = |actor: oil_dataflow::index::ActorId| -> u32 {
        match &q {
            Some(q) => u32::try_from(q[actor])
                .unwrap_or(MAX_BATCH)
                .clamp(1, MAX_BATCH),
            None => 1,
        }
    };
    let batch: IndexVec<RtNodeId, u32> = graph
        .nodes
        .indices()
        .map(|ni| {
            if cluster_of[ni].is_some() {
                1
            } else {
                batch_of(node_actor[ni.index()])
            }
        })
        .collect::<Vec<_>>()
        .into();
    let source_batch: IndexVec<RtSourceId, u32> = graph
        .sources
        .indices()
        .map(|i| batch_of(source_actor[i.index()]))
        .collect::<Vec<_>>()
        .into();
    let sink_batch: IndexVec<RtSinkId, u32> = graph
        .sinks
        .indices()
        .map(|i| batch_of(sink_actor[i.index()]))
        .collect::<Vec<_>>()
        .into();

    // Schedule-invariance taint: a clustered node's outputs resolve by a
    // serialisation policy, and anything computed from them inherits the
    // dependence. Fixpoint over node taint → buffer taint.
    let mut node_tainted: IndexVec<RtNodeId, bool> = graph
        .nodes
        .indices()
        .map(|ni| cluster_of[ni].is_some())
        .collect::<Vec<_>>()
        .into();
    let mut buffer_tainted: IndexVec<RtBufferId, bool> = IndexVec::from_elem(false, n_buffers);
    loop {
        let mut changed = false;
        for (ni, n) in graph.nodes.iter_enumerated() {
            if node_tainted[ni] {
                for &(b, _) in &n.writes {
                    if !buffer_tainted[b] {
                        buffer_tainted[b] = true;
                        changed = true;
                    }
                }
            } else if n.reads.iter().any(|&(b, _)| buffer_tainted[b]) {
                node_tainted[ni] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let invariant: IndexVec<RtBufferId, bool> = graph
        .buffers
        .indices()
        .map(|b| !buffer_tainted[b])
        .collect::<Vec<_>>()
        .into();

    RtPlan {
        batch,
        source_batch,
        sink_batch,
        clusters,
        cluster_uniform,
        cluster_of,
        unread,
        invariant,
    }
}

/// A miniature graph with a **non-uniform** serial cluster: two producers
/// of one buffer (`t`) gated on *disjoint* source-fed inputs, plus a
/// drain node and a sink. Shared by the plan tests here and the self-timed
/// engine's component-pinning determinism tests.
#[doc(hidden)]
pub fn non_uniform_merge_demo() -> RtGraph {
    let mut g = RtGraph::default();
    let mk = |name: &str| RtBuffer {
        name: name.into(),
        capacity: 4,
        initial_tokens: 0,
    };
    let a = g.buffers.push(mk("a"));
    let b = g.buffers.push(mk("b"));
    let t = g.buffers.push(mk("t"));
    let o = g.buffers.push(mk("o"));
    let node =
        |name: &str, reads: Vec<(RtBufferId, usize)>, writes: Vec<(RtBufferId, usize)>| RtNode {
            name: name.into(),
            function: "f".into(),
            response: Rational::new(1, 1_000_000),
            reads,
            writes,
        };
    g.nodes.push(node("n0", vec![(a, 1)], vec![(t, 1)]));
    g.nodes.push(node("n1", vec![(b, 1)], vec![(t, 1)]));
    g.nodes.push(node("n2", vec![(t, 1)], vec![(o, 1)]));
    for (name, out) in [("sa", a), ("sb", b)] {
        g.sources.push(RtSource {
            name: name.into(),
            function: "s".into(),
            outputs: vec![out],
            period: Rational::new(1, 1000),
        });
    }
    g.sinks.push(RtSink {
        name: "sk".into(),
        function: "k".into(),
        input: o,
        period: Rational::new(1, 1000),
    });
    g
}

fn initial_tokens_for_channel(compiled: &CompiledProgram, channel: ChannelId) -> usize {
    let graph = &compiled.analyzed.graph;
    let Some(writer) = graph.channels[channel].writer else {
        return 0;
    };
    let Some(tg) = &compiled.derived.task_graphs[writer] else {
        return 0;
    };
    let Some(binding) = graph.instances[writer]
        .bindings
        .iter()
        .find(|b| b.channel == channel && b.out)
    else {
        return 0;
    };
    tg.buffer_by_name(&binding.param)
        .map(|b| tg.buffers[b].initial_tokens as usize)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerOptions};
    use oil_lang::registry::FunctionSignature;

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    #[test]
    fn single_reader_channels_keep_their_names() {
        let src = r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                W(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        assert_eq!(rt.sources.len(), 1);
        assert_eq!(rt.sinks.len(), 1);
        assert_eq!(rt.nodes.len(), 1);
        // x: read only by W; y: written by W, drained by the sink.
        assert!(rt.buffers.iter().any(|b| b.name.ends_with(".x")));
        assert!(rt.buffers.iter().any(|b| b.name.ends_with(".y")));
        // Exact periods: 1 kHz -> 1/1000 s.
        assert_eq!(
            rt.sources.iter().next().unwrap().period,
            Rational::new(1, 1000)
        );
    }

    #[test]
    fn multi_reader_channels_are_replicated_per_reader() {
        let src = r#"
            mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
            mod seq Q(int a, out int n){ loop{ g(a, out n); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                sink int z = snk() @ 1 kHz;
                P(x, out y) || Q(x, out z)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        // The source broadcasts to two replicas, one per reader.
        let source = rt.sources.iter().next().unwrap();
        assert_eq!(source.outputs.len(), 2, "{:?}", rt.buffers);
        let names: Vec<&str> = source
            .outputs
            .iter()
            .map(|&b| rt.buffers[b].name.as_str())
            .collect();
        assert!(names.iter().all(|n| n.contains("->")), "{names:?}");
        // Each node reads its own replica.
        let read_buffers: Vec<RtBufferId> = rt
            .nodes
            .iter()
            .flat_map(|n| n.reads.iter().map(|&(b, _)| b))
            .collect();
        assert_eq!(read_buffers.len(), 2);
        assert_ne!(read_buffers[0], read_buffers[1]);
    }

    #[test]
    fn prologue_tasks_become_initial_tokens_not_nodes() {
        let src = r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        // Two loop tasks only; the init prologue shows as initial tokens.
        assert_eq!(rt.nodes.len(), 2);
        let y = rt
            .buffers
            .iter()
            .find(|b| b.name.ends_with(".y"))
            .expect("channel y");
        assert_eq!(y.initial_tokens, 4);
    }

    #[test]
    fn plan_groups_modal_twins_into_one_cluster() {
        let src = r#"
            mod seq S(int a, out int b){
                loop{ if(...){ t = f(a:2); } else { t = g(a:2); } init(t, out b); } while(1);
            }
            mod par D(){
                source int x = src() @ 2 kHz;
                sink int y = snk() @ 1 kHz;
                S(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        let p = plan(&rt);
        // The two branch tasks contend on the shared input replica and the
        // shared local `t`; the downstream task stays independent.
        assert!(!p.is_kpn_safe());
        assert_eq!(p.clusters.len(), 1);
        assert_eq!(p.clusters[0].len(), 2);
        // `t = g(a:2)` / `t = h(a:2)`: exact twins.
        assert_eq!(p.cluster_uniform, vec![true]);
        for &ni in &p.clusters[0] {
            assert_eq!(p.batch[ni], 1, "clustered nodes must not batch");
        }
        let free: Vec<RtNodeId> = rt
            .nodes
            .indices()
            .filter(|&ni| p.cluster_of[ni].is_none())
            .collect();
        assert_eq!(free.len(), 1);
        // Taint: the cluster's output `t` and everything downstream of it
        // (the sink channel `y`) are schedule-dependent; the source channel
        // replica the twins only *read* stays invariant.
        let by_name = |suffix: &str| {
            rt.buffers
                .iter_enumerated()
                .find(|(_, b)| b.name.ends_with(suffix))
                .map(|(i, _)| i)
                .unwrap()
        };
        assert!(p.invariant[by_name(".x")], "{:?}", rt.buffers);
        assert!(!p.invariant[by_name(".t")]);
        assert!(!p.invariant[by_name(".y")]);
    }

    #[test]
    fn plan_flags_non_uniform_clusters() {
        // Two producers of `t` gated on *disjoint* inputs: a contested merge
        // whose winner depends on which input has data, not on a fixed
        // tie-break. The plan must mark the cluster non-uniform so the
        // self-timed engine pins the whole component onto one worker.
        let g = non_uniform_merge_demo();
        let p = plan(&g);
        assert_eq!(p.clusters.len(), 1);
        assert_eq!(p.clusters[0].len(), 2);
        assert_eq!(p.cluster_uniform, vec![false]);
        let t = g
            .buffers
            .iter_enumerated()
            .find(|(_, b)| b.name == "t")
            .map(|(i, _)| i)
            .unwrap();
        assert!(!p.invariant[t], "a contested merge is schedule-dependent");
    }

    #[test]
    fn plan_batches_follow_the_repetition_vector() {
        // An 8:1 downsampling chain: the upstream node fires 8× per graph
        // iteration and gets a proportionally larger batch.
        let src = r#"
            mod seq F(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod seq Down(int a, out int b){ loop{ g(a:8, out b); } while(1); }
            mod par D(){
                fifo int m;
                source int x = src() @ 8 kHz;
                sink int y = snk() @ 1 kHz;
                F(x, out m) || Down(m, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        let p = plan(&rt);
        assert!(p.is_kpn_safe());
        assert!(p.invariant.iter().all(|&i| i), "KPN ⇒ all invariant");
        let fast = rt.nodes.indices().next().unwrap();
        let slow = rt.nodes.indices().nth(1).unwrap();
        assert_eq!(p.batch[fast], 8, "{:?}", p.batch);
        assert_eq!(p.batch[slow], 1);
        assert_eq!(p.source_batch.iter().copied().max(), Some(8));
        assert_eq!(p.sink_batch.iter().next().copied(), Some(1));
    }

    #[test]
    fn plan_clamps_batches_and_flags_unread_buffers() {
        let src = r#"
            mod seq F(int a, out int b){ loop{ f(a:200, out b); } while(1); }
            mod par D(){
                source int x = src() @ 200 kHz;
                sink int y = snk() @ 1 kHz;
                F(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        let p = plan(&rt);
        // The source fires 200× per iteration but batches are clamped.
        assert_eq!(p.source_batch.iter().next().copied(), Some(MAX_BATCH));
        assert!(p.batch.iter().all(|&b| (1..=MAX_BATCH).contains(&b)));
        assert!(p.unread.iter().all(|&u| !u), "all buffers are read here");
    }

    #[test]
    fn capacities_cover_bursts_and_slack() {
        let src = r#"
            mod seq Down(int a, out int b){ loop{ f(a:4, out b); } while(1); }
            mod par D(){
                source int x = src() @ 8 kHz;
                sink int y = snk() @ 2 kHz;
                Down(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let rt = lower(&compiled);
        let x = rt
            .buffers
            .iter()
            .find(|b| b.name.ends_with(".x"))
            .expect("channel x");
        // Write burst 1 + read burst 4 + slack is the floor.
        assert!(x.capacity >= 5 + CAPACITY_SLACK, "{x:?}");
    }
}
