//! Measured per-kernel cost models for profile-guided partitioning.
//!
//! The partitioner in [`crate::schedule`] balances workers on per-unit cost
//! estimates. By default those come from the *declared* CTA response times
//! (`RtNode::response`) — honest about the model, but blind to how fast the
//! kernels actually run on the deployment host. A [`KernelCostModel`] is
//! the measured alternative: a calibration harness (`oil_rt::profile`)
//! times each kernel at a representative burst size with a deterministic
//! robust estimator and serialises the result as a small JSON artifact.
//! Feeding that artifact back in via
//! [`SynthesisConfig::cost_model`](crate::schedule::SynthesisConfig)
//! steers `partition_workers` with observed ns/firing — *placement* only:
//! every resulting partition is still proven by the same exact-integer
//! replay, so observations can never make a schedule incorrect, only
//! better balanced.
//!
//! The JSON format (schema 1) is stable and hand-rolled on both ends (the
//! vendored serde is a no-op stub):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "host": "x86_64-linux-p4",
//!   "entries": [
//!     {"function": "mix", "ns_per_firing": 11.2, "burst": 64, "samples": 9}
//!   ]
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Cost-model JSON schema version.
pub const COST_MODEL_SCHEMA: u64 = 1;

/// One kernel's measured cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    /// Measured nanoseconds per firing (median of trimmed repeats).
    pub ns_per_firing: f64,
    /// Firings per timed burst during calibration.
    pub burst: u32,
    /// Timed repeats the estimate was drawn from (before trimming).
    pub samples: u32,
}

/// A measured per-kernel cost model: host fingerprint plus one entry per
/// coordinated function name. Entries are keyed (and serialised) in
/// lexicographic function order, so the serialised form — and the
/// [`Self::fingerprint`] recorded in schedules — is canonical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelCostModel {
    /// Where the measurements were taken (`arch-os-pN`); a model calibrated
    /// on one host is only advisory on another, and the fingerprint makes
    /// provenance auditable in `BENCH_runtime.json` / schedule dumps.
    pub host: String,
    /// Measured costs, keyed by coordinated function name.
    pub entries: BTreeMap<String, KernelCost>,
}

/// Why a cost-model artifact failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModelError(pub String);

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cost model: {}", self.0)
    }
}

impl std::error::Error for CostModelError {}

impl KernelCostModel {
    /// An empty model for `host`.
    pub fn new(host: impl Into<String>) -> Self {
        KernelCostModel {
            host: host.into(),
            entries: BTreeMap::new(),
        }
    }

    /// The calibrating host's fingerprint for *this* process:
    /// `arch-os-pN` with `N` the available parallelism.
    pub fn local_host() -> String {
        let p = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        format!("{}-{}-p{}", std::env::consts::ARCH, std::env::consts::OS, p)
    }

    /// Record (or replace) the measurement for `function`.
    pub fn insert(&mut self, function: impl Into<String>, cost: KernelCost) {
        self.entries.insert(function.into(), cost);
    }

    /// Measured ns/firing for `function`, if calibrated.
    pub fn ns_per_firing(&self, function: &str) -> Option<f64> {
        self.entries.get(function).map(|e| e.ns_per_firing)
    }

    /// A stable FNV-1a fingerprint of the canonical model content (host,
    /// functions, cost bits). Recorded in
    /// [`StaticSchedule::cost_model_hash`](crate::schedule::StaticSchedule)
    /// so a schedule names the exact observations that steered it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut write = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        write(self.host.as_bytes());
        write(&[0xff]);
        for (function, e) in &self.entries {
            write(function.as_bytes());
            write(&[0xfe]);
            write(&e.ns_per_firing.to_bits().to_le_bytes());
            write(&e.burst.to_le_bytes());
            write(&e.samples.to_le_bytes());
        }
        h
    }

    /// Serialise to the canonical schema-1 JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.entries.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {COST_MODEL_SCHEMA},\n"));
        out.push_str(&format!("  \"host\": \"{}\",\n", escape(&self.host)));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\",\n",
            self.fingerprint()
        ));
        out.push_str("  \"entries\": [\n");
        let mut first = true;
        for (function, e) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"function\": \"{}\", \"ns_per_firing\": {}, \
                 \"burst\": {}, \"samples\": {}}}",
                escape(function),
                fmt_f64(e.ns_per_firing),
                e.burst,
                e.samples
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a schema-1 JSON artifact. Loud on anything malformed — a
    /// silently-ignored cost model would be indistinguishable from an
    /// unbalanced partition.
    pub fn from_json(raw: &str) -> Result<Self, CostModelError> {
        let value = Json::parse(raw).map_err(CostModelError)?;
        let obj = value.object("top level")?;
        let schema = obj
            .get("schema")
            .ok_or_else(|| CostModelError("missing `schema`".into()))?
            .number("schema")?;
        if schema != COST_MODEL_SCHEMA as f64 {
            return Err(CostModelError(format!(
                "unsupported schema {schema} (want {COST_MODEL_SCHEMA})"
            )));
        }
        let host = obj
            .get("host")
            .ok_or_else(|| CostModelError("missing `host`".into()))?
            .string("host")?
            .to_string();
        let mut model = KernelCostModel::new(host);
        let entries = obj
            .get("entries")
            .ok_or_else(|| CostModelError("missing `entries`".into()))?
            .array("entries")?;
        for (i, e) in entries.iter().enumerate() {
            let eo = e.object(&format!("entries[{i}]"))?;
            let function = eo
                .get("function")
                .ok_or_else(|| CostModelError(format!("entries[{i}]: missing `function`")))?
                .string("function")?
                .to_string();
            let ns = eo
                .get("ns_per_firing")
                .ok_or_else(|| CostModelError(format!("entries[{i}]: missing `ns_per_firing`")))?
                .number("ns_per_firing")?;
            if !(ns.is_finite() && ns > 0.0) {
                return Err(CostModelError(format!(
                    "entries[{i}] `{function}`: ns_per_firing must be finite and positive, got {ns}"
                )));
            }
            let burst = eo.get("burst").map_or(Ok(0.0), |v| v.number("burst"))? as u32;
            let samples = eo.get("samples").map_or(Ok(0.0), |v| v.number("samples"))? as u32;
            if model.entries.contains_key(&function) {
                return Err(CostModelError(format!(
                    "duplicate entry for function `{function}`"
                )));
            }
            model.insert(
                function,
                KernelCost {
                    ns_per_firing: ns,
                    burst,
                    samples,
                },
            );
        }
        Ok(model)
    }

    /// Read the `OIL_COST_MODEL` knob: unset or empty means no model;
    /// otherwise the value is a path to a schema-1 JSON artifact and any
    /// read/parse failure panics loudly (same discipline as
    /// `oil_rt::trace::parse_trace` — a typo must not silently demote the
    /// run to declared costs).
    pub fn from_env() -> Option<Self> {
        let path = match std::env::var("OIL_COST_MODEL") {
            Ok(p) if !p.trim().is_empty() => p,
            _ => return None,
        };
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("OIL_COST_MODEL: cannot read `{path}`: {e}"));
        Some(
            Self::from_json(&raw)
                .unwrap_or_else(|e| panic!("OIL_COST_MODEL: `{path}` is not a cost model: {e}")),
        )
    }
}

/// Format a finite f64 so it round-trips (shortest via `{}`; `{}` on f64 in
/// Rust prints the shortest representation that parses back exactly).
fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    // `{}` never prints an exponent for the magnitudes measured here, but
    // guard the integral case so the output stays a JSON number with a
    // fractional part (readable as f64 everywhere).
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A minimal JSON value — just enough to read the artifact (the vendored
/// serde is a no-op stub, so parsing is hand-rolled like the exporters in
/// `oil_rt::trace`).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(raw: &str) -> Result<Json, String> {
        let bytes = raw.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn object(&self, what: &str) -> Result<JsonObject<'_>, CostModelError> {
        match self {
            Json::Object(fields) => Ok(JsonObject(fields)),
            other => Err(CostModelError(format!(
                "{what}: expected object, got {}",
                other.kind()
            ))),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], CostModelError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(CostModelError(format!(
                "{what}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    fn number(&self, what: &str) -> Result<f64, CostModelError> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(CostModelError(format!(
                "{what}: expected number, got {}",
                other.kind()
            ))),
        }
    }

    fn string(&self, what: &str) -> Result<&str, CostModelError> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(CostModelError(format!(
                "{what}: expected string, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

struct JsonObject<'a>(&'a [(String, Json)]);

impl<'a> JsonObject<'a> {
    fn get(&self, key: &str) -> Option<&'a Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::String(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::String(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 scalar (bytes are valid UTF-8:
                        // the input came in as &str).
                        let s = &bytes[*pos..];
                        let text = unsafe { std::str::from_utf8_unchecked(s) };
                        let c = text.chars().next().unwrap();
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelCostModel {
        let mut m = KernelCostModel::new("x86_64-linux-p4");
        m.insert(
            "mix",
            KernelCost {
                ns_per_firing: 11.25,
                burst: 64,
                samples: 9,
            },
        );
        m.insert(
            "LPF",
            KernelCost {
                ns_per_firing: 412.0,
                burst: 64,
                samples: 9,
            },
        );
        m
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let parsed = KernelCostModel::from_json(&m.to_json()).expect("round trip");
        assert_eq!(parsed, m);
        assert_eq!(parsed.fingerprint(), m.fingerprint());
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let m = sample();
        let mut changed = m.clone();
        changed.insert(
            "mix",
            KernelCost {
                ns_per_firing: 11.26,
                burst: 64,
                samples: 9,
            },
        );
        assert_ne!(m.fingerprint(), changed.fingerprint());
        let mut other_host = m.clone();
        other_host.host = "aarch64-macos-p8".into();
        assert_ne!(m.fingerprint(), other_host.fingerprint());
    }

    #[test]
    fn lookup_falls_through_for_unknown_functions() {
        let m = sample();
        assert_eq!(m.ns_per_firing("mix"), Some(11.25));
        assert_eq!(m.ns_per_firing("unknown"), None);
    }

    #[test]
    fn parse_rejects_malformed_artifacts_loudly() {
        assert!(KernelCostModel::from_json("{}").is_err());
        assert!(
            KernelCostModel::from_json("{\"schema\": 99, \"host\": \"h\", \"entries\": []}")
                .is_err()
        );
        assert!(KernelCostModel::from_json(
            "{\"schema\": 1, \"host\": \"h\", \"entries\": [{\"function\": \"f\", \
             \"ns_per_firing\": -1.0}]}"
        )
        .is_err());
        assert!(KernelCostModel::from_json(
            "{\"schema\": 1, \"host\": \"h\", \"entries\": [{\"function\": \"f\", \
             \"ns_per_firing\": 1.0}, {\"function\": \"f\", \"ns_per_firing\": 2.0}]}"
        )
        .is_err());
        // Trailing garbage is an error, not silently ignored.
        assert!(KernelCostModel::from_json(
            "{\"schema\": 1, \"host\": \"h\", \"entries\": []} extra"
        )
        .is_err());
    }
}
