//! The OIL multiprocessor compiler.
//!
//! This crate implements the compilation flow of the paper (Sections IV–V):
//!
//! 1. the front end of [`oil_lang`] parses and analyses the program;
//! 2. [`parallelize`] extracts a **task graph** from every sequential module —
//!    one task per function call / assignment, one circular buffer per
//!    variable, with guarded statements becoming unconditionally executing
//!    tasks (Fig. 4);
//! 3. [`derive`] builds the **CTA model**: a component per task, per
//!    while-loop, per module, per source/sink and per FIFO, with transfer
//!    rate ratios `γ`, constant delays `ε` and rate-dependent delays `φ`
//!    following Figs. 7–10;
//! 4. [`buffers`] runs the polynomial-time CTA buffer sizing and maps the
//!    resulting capacities back onto OIL buffers and FIFOs;
//! 5. [`codegen`] emits a sequential code fragment per task plus the runtime
//!    glue (the paper generates C++; this reproduction generates Rust);
//! 6. [`rtgraph`] lowers the compiled program into the flat, engine-agnostic
//!    runtime graph the execution engines (`oil-sim`, `oil-rt`) consume;
//! 7. [`schedule`] synthesises **periodic static-order schedules** from the
//!    runtime graph's repetition vector — one validated firing list per
//!    worker, replayed by `oil-rt`'s static-order engine with zero runtime
//!    scheduling.
//!
//! The one-call entry point is [`pipeline::compile`].

pub mod buffers;
pub mod codegen;
pub mod costmodel;
pub mod derive;
pub mod parallelize;
pub mod pipeline;
pub mod rtgraph;
pub mod schedule;

pub use buffers::BufferPlan;
pub use codegen::GeneratedCode;
pub use costmodel::{KernelCost, KernelCostModel};
pub use derive::{derive_cta_model, DerivedModel};
pub use parallelize::{extract_task_graph, runnable_tasks};
pub use pipeline::{compile, CompileError, CompiledProgram, CompilerOptions};
pub use rtgraph::{
    RtBuffer, RtBufferId, RtGraph, RtNode, RtNodeId, RtSink, RtSinkId, RtSource, RtSourceId,
};
pub use schedule::{
    collapse_modal, modal_admission, synthesize, ModalClusterInfo, ModalSchedule, ModeScript,
    PhaseSpan, ScheduleError, StaticSchedule, SynthesisConfig,
};
