//! Buffer sizing for compiled OIL programs.
//!
//! Buffer sizing runs on the derived CTA model (see [`oil_cta::size_buffers`])
//! and this module maps the resulting capacities back onto the program's own
//! structure: the FIFO channels declared in `mod par` bodies and the circular
//! buffers created for variables inside sequential modules. These are the
//! capacities the runtime (or the simulator) allocates.

use crate::derive::DerivedModel;
use oil_cta::{buffersizing, BufferSizingError, CtaModel};
use oil_lang::sema::AnalyzedProgram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sized buffers of a compiled program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferPlan {
    /// Capacity (in values) of each FIFO / source / sink channel, keyed by
    /// the channel's hierarchical name (e.g. `<top>.vid`).
    pub channels: BTreeMap<String, u64>,
    /// Capacity of each local variable buffer, keyed by
    /// `<instance path>.<variable>` (e.g. `C.B.y`).
    pub locals: BTreeMap<String, u64>,
    /// Number of sizing iterations the CTA algorithm needed.
    pub iterations: usize,
}

impl BufferPlan {
    /// Total number of buffered values across channels and locals.
    pub fn total_tokens(&self) -> u64 {
        self.channels.values().sum::<u64>() + self.locals.values().sum::<u64>()
    }

    /// Capacity of a channel by (suffix of) its name.
    pub fn channel(&self, name: &str) -> Option<u64> {
        self.channels
            .iter()
            .find(|(k, _)| k.as_str() == name || k.ends_with(&format!(".{name}")))
            .map(|(_, &v)| v)
    }
}

/// Run CTA buffer sizing on a derived model and split the capacities into
/// channel buffers and local variable buffers. Also returns the sized model
/// (with capacities applied) so later analyses can use it directly.
pub fn plan_buffers(
    analyzed: &AnalyzedProgram,
    derived: &DerivedModel,
) -> Result<(BufferPlan, CtaModel), BufferSizingError> {
    let sizing = oil_cta::size_buffers(&derived.cta)?;
    let mut sized = derived.cta.clone();
    buffersizing::apply_capacities(&mut sized, &sizing.capacities);

    let channel_names: Vec<&str> = analyzed
        .graph
        .channels
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let mut channels = BTreeMap::new();
    let mut locals = BTreeMap::new();
    for (name, cap) in &sizing.capacities {
        // A minimum of one value per buffer: even a fully synchronous
        // producer/consumer pair needs one location to exchange data.
        let cap = (*cap).max(1);
        if channel_names.contains(&name.as_str()) {
            channels.insert(name.clone(), cap);
        } else {
            locals.insert(name.clone(), cap);
        }
    }
    // Channels that never needed enlargement still need at least one slot.
    for c in &analyzed.graph.channels {
        channels.entry(c.name.clone()).or_insert(1);
    }

    Ok((
        BufferPlan {
            channels,
            locals,
            iterations: sizing.iterations,
        },
        sized,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_cta_model;
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};
    use oil_lang::{analyze, parse_program};

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-6));
        }
        r
    }

    fn plan(src: &str) -> (BufferPlan, AnalyzedProgram) {
        let reg = registry();
        let analyzed = analyze(&parse_program(src).unwrap(), &reg).unwrap();
        let derived = derive_cta_model(&analyzed, &reg);
        let (plan, sized) = plan_buffers(&analyzed, &derived).unwrap();
        assert!(sized.check_consistency().is_ok());
        (plan, analyzed)
    }

    #[test]
    fn every_channel_gets_a_capacity() {
        let (plan, analyzed) = plan(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                fifo int m;
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                W(x, out m) || W(m, out y)
            }
            "#,
        );
        assert_eq!(plan.channels.len(), analyzed.graph.channels.len());
        assert!(plan.channels.values().all(|&c| c >= 1));
        assert!(plan.channel("m").is_some());
        assert!(plan.channel("nonexistent").is_none());
        assert!(plan.total_tokens() >= 3);
    }

    #[test]
    fn local_variable_buffers_are_separated_from_channels() {
        let (plan, _) = plan(
            r#"
            mod seq W(int a, out int b){ loop{ y = f(a); g(y, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int z = snk() @ 1 kHz;
                W(x, out z)
            }
            "#,
        );
        assert!(
            plan.locals.keys().any(|k| k.ends_with(".y")),
            "{:?}",
            plan.locals
        );
        assert!(!plan.channels.keys().any(|k| k.ends_with(".y")));
    }

    #[test]
    fn faster_rates_do_not_shrink_buffers() {
        let slow = plan(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                W(x, out y)
            }
            "#,
        )
        .0;
        let fast = plan(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 100 kHz;
                sink int y = snk() @ 100 kHz;
                W(x, out y)
            }
            "#,
        )
        .0;
        assert!(fast.total_tokens() >= slow.total_tokens());
    }
}
