//! Task-graph extraction from sequential OIL modules.
//!
//! Following Section IV of the paper (and the method of Geuns et al.,
//! LCTES 2013 it builds on):
//!
//! * a task is created for **every function call and assignment statement**;
//! * statements guarded by `if`/`switch` become tasks that execute
//!   **unconditionally** while their bodies remain guarded (Fig. 4);
//! * a circular buffer is created for **every variable**; statements writing
//!   the variable become producers, statements reading it become consumers;
//! * stream parameters of the module become buffers tagged with the stream
//!   name, using the colon notation's counts as per-firing rates;
//! * the while-loop nest of every statement is recorded so the CTA derivation
//!   can create one component per loop (Fig. 9).

use oil_dataflow::taskgraph::{BufferId, LoopId, PortAccess, Task, TaskBuffer, TaskGraph};
use oil_lang::ast::*;
use oil_lang::registry::FunctionRegistry;

/// Extract the task graph of a sequential `module`.
///
/// # Panics
/// Panics if the module does not have a sequential body (callers obtain
/// modules from an analysed program where this is guaranteed).
pub fn extract_task_graph(module: &Module, registry: &FunctionRegistry) -> TaskGraph {
    let ModuleBody::Seq(body) = &module.body else {
        panic!("extract_task_graph requires a sequential module");
    };
    let mut ex = Extractor {
        graph: TaskGraph::new(module.display_name()),
        registry,
        module,
        task_counter: 0,
    };

    // Buffers for stream parameters first so their indices are stable.
    for p in &module.params {
        ex.buffer_for(&p.name.name, Some(p.name.name.clone()));
    }
    for v in &body.vars {
        ex.buffer_for(&v.name.name, None);
    }

    ex.walk(&body.stmts, &mut Vec::new(), false);
    ex.graph
}

struct Extractor<'a> {
    graph: TaskGraph,
    registry: &'a FunctionRegistry,
    module: &'a Module,
    task_counter: usize,
}

impl<'a> Extractor<'a> {
    fn buffer_for(&mut self, name: &str, stream: Option<String>) -> BufferId {
        if let Some(idx) = self.graph.buffer_by_name(name) {
            return idx;
        }
        self.graph.add_buffer(TaskBuffer {
            name: name.to_string(),
            initial_tokens: 0,
            capacity: None,
            stream: stream.or_else(|| {
                self.module
                    .params
                    .iter()
                    .find(|p| p.name.name == name)
                    .map(|p| p.name.name.clone())
            }),
        })
    }

    fn next_task_name(&mut self, function: &str) -> String {
        let n = self.task_counter;
        self.task_counter += 1;
        format!("t{}_{}", n, function)
    }

    fn walk(&mut self, stmts: &[Stmt], loop_nest: &mut Vec<LoopId>, guarded: bool) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, value, .. } => {
                    self.add_statement_task(
                        "=",
                        Some(target),
                        &expr_reads(value),
                        loop_nest,
                        guarded,
                    );
                }
                Stmt::Call { func, args, .. } => {
                    let mut reads = Vec::new();
                    let mut writes = Vec::new();
                    for arg in args {
                        match arg {
                            Arg::In(e) => reads.extend(expr_reads(e)),
                            Arg::Out(a) => writes.push(a.clone()),
                        }
                    }
                    self.add_call_task(&func.name, &writes, &reads, loop_nest, guarded);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    // The guard expression's reads are attributed to the tasks
                    // inside (they need the value to evaluate their guard).
                    let _ = cond;
                    self.walk(then_branch, loop_nest, true);
                    self.walk(else_branch, loop_nest, true);
                }
                Stmt::Switch { cases, default, .. } => {
                    for c in cases {
                        self.walk(&c.body, loop_nest, true);
                    }
                    self.walk(default, loop_nest, true);
                }
                Stmt::LoopWhile { body, cond, .. } => {
                    let parent = loop_nest.last().copied();
                    let id = self.graph.add_loop(parent, cond.is_always_true());
                    loop_nest.push(id);
                    self.walk(body, loop_nest, guarded);
                    loop_nest.pop();
                }
            }
        }
    }

    fn add_statement_task(
        &mut self,
        function: &str,
        target: Option<&Access>,
        reads: &[Access],
        loop_nest: &[LoopId],
        guarded: bool,
    ) {
        let writes: Vec<Access> = target.cloned().into_iter().collect();
        self.add_call_task(function, &writes, reads, loop_nest, guarded);
    }

    fn add_call_task(
        &mut self,
        function: &str,
        writes: &[Access],
        reads: &[Access],
        loop_nest: &[LoopId],
        guarded: bool,
    ) {
        let name = self.next_task_name(function);
        let response_time = self.registry.response_time(function);
        let read_ports = reads
            .iter()
            .map(|a| PortAccess {
                buffer: self.buffer_for(&a.name.name, None),
                count: a.count(),
            })
            .collect::<Vec<_>>();
        let write_ports = writes
            .iter()
            .map(|a| PortAccess {
                buffer: self.buffer_for(&a.name.name, None),
                count: a.count(),
            })
            .collect::<Vec<_>>();

        // Prologue writes (outside every loop) provide initial tokens, e.g.
        // `init(out c:4)` of Fig. 2c.
        if loop_nest.is_empty() {
            for w in &write_ports {
                self.graph.buffers[w.buffer].initial_tokens += w.count;
            }
        }

        let idx = self.graph.add_task(Task {
            name,
            function: function.to_string(),
            response_time,
            guarded,
            loop_nest: loop_nest.to_vec(),
            reads: read_ports,
            writes: write_ports,
        });
        if let Some(&innermost) = loop_nest.last() {
            self.graph.loops[innermost].tasks.push(idx);
        }
    }
}

/// All variable/stream reads of an expression, in evaluation order.
fn expr_reads(e: &Expr) -> Vec<Access> {
    let mut v = Vec::new();
    e.reads(&mut v);
    v
}

/// The tasks of `graph` that execute repeatedly at run time, in task order.
///
/// Prologue statements (outside every while-loop) run exactly once before
/// start-up; their effect is fully captured by the initial tokens they leave
/// in the buffers, so the execution engines never schedule them. A module
/// whose *entire* body is prologue (no loop has any task) keeps all of its
/// tasks — there is nothing else to execute.
pub fn runnable_tasks(graph: &TaskGraph) -> Vec<oil_dataflow::index::ActorId> {
    let has_loop_tasks = graph.loops.iter().any(|l| !l.tasks.is_empty());
    graph
        .tasks
        .iter_enumerated()
        .filter(|(_, t)| !(t.loop_nest.is_empty() && has_loop_tasks))
        .map(|(i, _)| i)
        .collect()
}

/// Which loops (by id) access a given buffer, in program order. Used by the
/// CTA derivation to wire the stream-periodicity connections of Fig. 9.
pub fn loops_accessing(graph: &TaskGraph, buffer: BufferId) -> Vec<LoopId> {
    let mut out = Vec::new();
    for l in &graph.loops {
        let touches = graph.tasks.iter().any(|t| {
            t.loop_nest.contains(&l.id)
                && (t.reads.iter().any(|r| r.buffer == buffer)
                    || t.writes.iter().any(|w| w.buffer == buffer))
        });
        if touches {
            out.push(l.id);
        }
    }
    out
}

/// Dump the loop structure of the extracted graph for [`LoopInfo`] consumers
/// (examples print this to mirror the paper's figures).
pub fn describe_loops(graph: &TaskGraph) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for l in &graph.loops {
        let tasks: Vec<&str> = l
            .tasks
            .iter()
            .map(|&t| graph.tasks[t].name.as_str())
            .collect();
        let _ = writeln!(
            s,
            "loop {} (parent {:?}, infinite {}): [{}]",
            l.id,
            l.parent,
            l.infinite,
            tasks.join(", ")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_lang::parser::parse_program;
    use oil_lang::registry::FunctionSignature;

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "h", "k", "init", "LPF", "resamp"] {
            r.register(FunctionSignature::pure(f, 1e-6));
        }
        r
    }

    fn extract(src: &str, module: &str) -> TaskGraph {
        let p = parse_program(src).unwrap();
        extract_task_graph(p.module(module).unwrap(), &registry())
    }

    #[test]
    fn fig4a_guarded_tasks() {
        let tg = extract(
            "mod seq M(out int x){ if(...){ y = g(); } else { y = h(); } k(y, out x:2); }",
            "M",
        );
        // Three tasks: t_g, t_h (guarded) and t_k (unconditional).
        assert_eq!(tg.tasks.len(), 3);
        let guarded: Vec<bool> = tg.tasks.iter().map(|t| t.guarded).collect();
        assert_eq!(guarded, vec![true, true, false]);
        // Buffer y has two producers and one consumer; buffer/stream x has
        // one producer writing two values per firing.
        let by = tg.buffer_by_name("y").unwrap();
        let bx = tg.buffer_by_name("x").unwrap();
        assert_eq!(tg.producers(by).len(), 2);
        assert_eq!(tg.consumers(by).len(), 1);
        assert_eq!(
            tg.producers(bx),
            vec![(tg.task_by_name("t2_k").unwrap(), 2)]
        );
        assert_eq!(tg.buffers[bx].stream.as_deref(), Some("x"));
        assert!(tg.buffers[by].stream.is_none());
    }

    #[test]
    fn fig2c_module_a_single_task_multi_rate() {
        let tg = extract(
            "mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }",
            "A",
        );
        assert_eq!(tg.tasks.len(), 1);
        assert_eq!(tg.loops.len(), 1);
        assert!(tg.loops.iter().next().unwrap().infinite);
        let t = &tg.tasks[tg.task_by_name("t0_f").unwrap()];
        assert_eq!(t.writes[0].count, 3);
        assert_eq!(t.reads[0].count, 3);
        assert_eq!(t.loop_nest.len(), 1);
    }

    #[test]
    fn fig2c_module_b_prologue_initial_tokens() {
        let tg = extract(
            "mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }",
            "B",
        );
        let bc = tg.buffer_by_name("c").unwrap();
        assert_eq!(tg.buffers[bc].initial_tokens, 4);
        assert_eq!(tg.prologue_tasks().len(), 1);
        let l0 = tg.loops.iter().next().unwrap().id;
        assert_eq!(tg.tasks_in_loop(l0).len(), 1);
    }

    #[test]
    fn fig9a_two_loops_and_intermediate_variable() {
        let tg = extract(
            "mod seq A(int x, out int o){
                loop{ y = f(x); o = f(y); } while(...);
                loop{ g(x, y, out o); } while(...);
             }",
            "A",
        );
        assert_eq!(tg.loops.len(), 2);
        assert!(!tg.loops.iter().next().unwrap().infinite);
        let bx = tg.buffer_by_name("x").unwrap();
        let by = tg.buffer_by_name("y").unwrap();
        let loop_ids: Vec<LoopId> = tg.loops.iter().map(|l| l.id).collect();
        assert_eq!(loops_accessing(&tg, bx), loop_ids);
        assert_eq!(loops_accessing(&tg, by), loop_ids);
        // y is produced in loop 0 and consumed in loops 0 and 1.
        assert_eq!(tg.producers(by).len(), 1);
        assert_eq!(tg.consumers(by).len(), 2);
    }

    #[test]
    fn nested_loops_get_parent_links() {
        let tg = extract(
            "mod seq N(int a, out int b){
                loop{
                    f(a, out b);
                    loop{ g(a, out b); } while(...);
                } while(1);
             }",
            "N",
        );
        assert_eq!(tg.loops.len(), 2);
        let ids: Vec<LoopId> = tg.loops.iter().map(|l| l.id).collect();
        assert_eq!(tg.loops[ids[1]].parent, Some(ids[0]));
        let nested = tg.task_by_name("t1_g").unwrap();
        assert_eq!(tg.tasks[nested].loop_nest, ids);
        assert!(describe_loops(&tg).contains("parent Some(l0)"));
    }

    #[test]
    fn switch_arms_are_guarded() {
        let tg = extract(
            "mod seq S(int a, out int b){
                loop{ switch(a) case 0 { f(a, out b); } default { g(a, out b); } } while(1);
             }",
            "S",
        );
        assert_eq!(tg.tasks.len(), 2);
        assert!(tg.tasks.iter().all(|t| t.guarded));
    }

    #[test]
    fn response_times_come_from_registry() {
        let mut reg = registry();
        reg.register(FunctionSignature::pure("slow", 5e-3));
        let p = parse_program("mod seq A(int a, out int b){ loop{ slow(a, out b); } while(1); }")
            .unwrap();
        let tg = extract_task_graph(p.module("A").unwrap(), &reg);
        assert_eq!(tg.tasks.iter().next().unwrap().response_time, 5e-3);
    }

    #[test]
    fn task_graph_converts_to_consistent_sdf() {
        let tg = extract(
            "mod seq A(int x, out int o){ loop{ y = f(x); g(y, out o); } while(1); }",
            "A",
        );
        let sdf = tg.to_sdf();
        assert!(sdf.is_consistent());
    }
}
