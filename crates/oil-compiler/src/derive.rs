//! Derivation of a CTA model from an analysed OIL program.
//!
//! Mirrors Section V of the paper:
//!
//! * every **task** (function/assignment) becomes a CTA component whose input
//!   and output ports are connected with the task's response time as delay
//!   (Fig. 7); multi-rate accesses contribute transfer-rate ratios `γ = π/ψ`
//!   and rate-dependent delays `φ = ψ − ψ/π` (Fig. 8);
//! * every **while-loop** becomes a component nesting the components of the
//!   statements in its body; for every stream accessed in several loops,
//!   periodicity connections with delay `1/r_s` link the loop components and
//!   a back connection with the negated total delay enforces strict
//!   periodicity (Fig. 9);
//! * every **module instantiation** becomes a component with a pair of
//!   modelling-artifact ports per stream; FIFOs between modules become pairs
//!   of oppositely directed connections whose rate-dependent delay `-δ/r`
//!   models the buffer capacity; sources and sinks become components whose
//!   port rates are fixed by their frequency, and latency constraints become
//!   constraint connections (Fig. 10).
//!
//! This is the boundary where the front end's `f64` quantities (declared
//! source/sink frequencies, registry response times, latency amounts) are
//! converted — losslessly, via [`Rational::from_f64`] — into the exact
//! rationals the CTA analyses compute with. Everything downstream of here is
//! exact.

use crate::parallelize::{extract_task_graph, loops_accessing};
use oil_cta::{latency, ComponentId, CtaModel, PortId, Rational};
use oil_dataflow::index::IndexVec;
use oil_dataflow::taskgraph::TaskGraph;
use oil_dataflow::{ActorId, ChannelId, LoopId};
use oil_lang::ast::LatencyRelation;
use oil_lang::registry::FunctionRegistry;
use oil_lang::sema::{AnalyzedProgram, ChannelKind, InstanceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The CTA model derived from a program, with lookup tables back to the
/// program's structure.
#[derive(Debug, Clone)]
pub struct DerivedModel {
    /// The derived CTA model.
    pub cta: CtaModel,
    /// Per leaf instance: the CTA component representing it.
    pub instance_components: IndexVec<InstanceId, ComponentId>,
    /// Per instance: the extracted task graph (`None` for black boxes).
    pub task_graphs: IndexVec<InstanceId, Option<TaskGraph>>,
    /// Per channel: the interface ports used at the application level.
    pub channel_ports: IndexVec<ChannelId, ChannelPorts>,
}

/// Application-level ports of one channel (FIFO, source or sink).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelPorts {
    /// The port where the channel's data originates (source data port or the
    /// writer module's output port).
    pub data_out: Option<PortId>,
    /// The port where space is returned to (source space port or the writer
    /// module's input port).
    pub space_in: Option<PortId>,
    /// Data-entry ports of all readers (or of the sink).
    pub reader_in: Vec<PortId>,
    /// Space-exit ports of all readers (or of the sink).
    pub reader_out: Vec<PortId>,
}

/// Ports of one stream parameter on a module component.
#[derive(Debug, Clone, Copy)]
struct StreamPorts {
    input: PortId,
    output: PortId,
}

/// Convert a registry/front-end time or frequency to its exact rational.
fn exact(x: f64) -> Rational {
    Rational::from_f64(x)
}

/// Derive the CTA model for a whole analysed program.
pub fn derive_cta_model(program: &AnalyzedProgram, registry: &FunctionRegistry) -> DerivedModel {
    let mut cta = CtaModel::new();
    let graph = &program.graph;

    let mut instance_components: IndexVec<InstanceId, ComponentId> =
        IndexVec::with_capacity(graph.instances.len());
    let mut task_graphs: IndexVec<InstanceId, Option<TaskGraph>> =
        IndexVec::with_capacity(graph.instances.len());
    // For each instance: map from bound channel to its module-level stream
    // ports.
    let mut instance_stream_ports: IndexVec<InstanceId, BTreeMap<ChannelId, StreamPorts>> =
        IndexVec::with_capacity(graph.instances.len());

    for inst in &graph.instances {
        if inst.black_box {
            let (comp, ports) = derive_black_box(&mut cta, inst, registry);
            instance_components.push(comp);
            instance_stream_ports.push(ports);
            task_graphs.push(None);
        } else {
            let module =
                &program.program.modules[inst.module_index.expect("non-black-box has module")];
            let tg = extract_task_graph(module, registry);
            let (comp, ports) = derive_seq_instance(&mut cta, inst, &tg, registry);
            instance_components.push(comp);
            instance_stream_ports.push(ports);
            task_graphs.push(Some(tg));
        }
    }

    // Application-level wiring: channels, sources, sinks and latency
    // constraints.
    let mut channel_ports: IndexVec<ChannelId, ChannelPorts> =
        IndexVec::from_elem(ChannelPorts::default(), graph.channels.len());
    for (ci, ch) in graph.channels.iter_enumerated() {
        let mut ports = ChannelPorts::default();
        match &ch.kind {
            ChannelKind::Source { func, rate_hz } => {
                let rate = exact(*rate_hz);
                let comp = cta.add_component(format!("w_src_{}", func), None);
                let data = cta.add_required_rate_port(comp, "data", rate);
                let space = cta.add_port(comp, "space", None);
                // Space must have returned before the next production.
                cta.connect(space, data, Rational::ZERO, Rational::ZERO, Rational::ONE);
                ports.data_out = Some(data);
                ports.space_in = Some(space);
            }
            ChannelKind::Sink { func, rate_hz } => {
                let rate = exact(*rate_hz);
                let comp = cta.add_component(format!("w_snk_{}", func), None);
                let data = cta.add_required_rate_port(comp, "data", rate);
                let space = cta.add_port(comp, "space", None);
                // Space is released one sink period after consumption.
                cta.connect(data, space, rate.recip(), Rational::ZERO, Rational::ONE);
                ports.reader_in.push(data);
                ports.reader_out.push(space);
            }
            ChannelKind::Fifo => {}
        }
        // Writer module side.
        if let Some(w) = ch.writer {
            if let Some(sp) = instance_stream_ports[w].get(&ci) {
                ports.data_out = Some(sp.output);
                ports.space_in = Some(sp.input);
            }
        }
        // Reader module side.
        for &r in &ch.readers {
            if let Some(sp) = instance_stream_ports[r].get(&ci) {
                ports.reader_in.push(sp.input);
                ports.reader_out.push(sp.output);
            }
        }
        channel_ports[ci] = ports;
    }

    // Connect data and space paths per channel.
    for (ci, ch) in graph.channels.iter_enumerated() {
        let ports = &channel_ports[ci];
        let (Some(data_out), Some(space_in)) = (ports.data_out, ports.space_in) else {
            continue;
        };
        // Values written into the channel before the stream loops start
        // (prologue statements such as `init(out c:4)` in Fig. 2c) are
        // initial tokens: they let every reader start earlier, modelled as a
        // delay of -δ0/r on the data connection.
        let initial_tokens = ch
            .writer
            .and_then(|w| {
                let tg = task_graphs[w].as_ref()?;
                let binding = graph.instances[w]
                    .bindings
                    .iter()
                    .find(|b| b.channel == ci && b.out)?;
                let buf = tg.buffer_by_name(&binding.param)?;
                Some(tg.buffers[buf].initial_tokens)
            })
            .unwrap_or(0);
        // Per-firing production of the writer into this channel (1 for
        // sources and unknown writers).
        let pi = writer_access_count(graph, &task_graphs, registry, ci);
        for (k, &rin) in ports.reader_in.iter().enumerate() {
            // Per-firing consumption of this reader (1 for sinks).
            let psi = access_count_of_instance(
                graph,
                &task_graphs,
                registry,
                ci,
                ch.readers.get(k).copied(),
            );
            // The multi-rate granularity delay of Fig. 8: the consumer's
            // firing waits until its whole burst of psi values is available,
            // produced pi at a time; initial tokens written by prologue
            // statements let it start correspondingly earlier. Exact:
            // φ = ψ − min(ψ/π, 1) − δ0.
            let psi_r = Rational::from_int(psi as i128);
            let burst_wait = Rational::new(psi as i128, pi as i128).min(Rational::ONE);
            let granularity = psi_r - burst_wait;
            cta.connect(
                data_out,
                rin,
                Rational::ZERO,
                granularity - Rational::from_int(initial_tokens as i128),
                Rational::ONE,
            );
            let rout = ports.reader_out[k];
            // The space connection carries the buffer capacity -δ/r and is
            // what buffer sizing enlarges.
            cta.connect_buffer(
                ch.name.clone(),
                rout,
                space_in,
                Rational::ZERO,
                Rational::ZERO,
                Rational::ONE,
            );
        }
    }

    // Latency constraints between sources and sinks (paper Fig. 10): the
    // endpoints are the channels' data ports.
    for l in &graph.latencies {
        let subject = endpoint_port(&channel_ports[l.subject]);
        let reference = endpoint_port(&channel_ports[l.reference]);
        let (Some(subject), Some(reference)) = (subject, reference) else {
            continue;
        };
        let bound_seconds = exact(l.amount_ms) * Rational::new(1, 1000);
        match l.relation {
            // `start S n ms before R`: R may start at most n ms after S.
            LatencyRelation::Before => {
                latency::add_before_constraint(&mut cta, reference, subject, bound_seconds)
            }
            // `start S n ms after R`: S starts at least n ms after R.
            LatencyRelation::After => {
                latency::add_after_constraint(&mut cta, subject, reference, bound_seconds)
            }
        }
    }

    DerivedModel {
        cta,
        instance_components,
        task_graphs,
        channel_ports,
    }
}

fn endpoint_port(ports: &ChannelPorts) -> Option<PortId> {
    ports.data_out.or_else(|| ports.reader_in.first().copied())
}

/// Per-firing number of values the channel's *writer* produces into it.
fn writer_access_count(
    graph: &oil_lang::sema::AppGraph,
    task_graphs: &IndexVec<InstanceId, Option<TaskGraph>>,
    registry: &FunctionRegistry,
    channel: ChannelId,
) -> u64 {
    access_count_of_instance(
        graph,
        task_graphs,
        registry,
        channel,
        graph.channels[channel].writer,
    )
}

/// Per-firing number of values `instance` transfers on `channel` (reads or
/// writes, whichever the binding direction says); 1 when unknown, for sources
/// and for sinks.
fn access_count_of_instance(
    graph: &oil_lang::sema::AppGraph,
    task_graphs: &IndexVec<InstanceId, Option<TaskGraph>>,
    registry: &FunctionRegistry,
    channel: ChannelId,
    instance: Option<InstanceId>,
) -> u64 {
    let Some(ii) = instance else { return 1 };
    let inst = &graph.instances[ii];
    let Some(binding) = inst.bindings.iter().find(|b| b.channel == channel) else {
        return 1;
    };
    match &task_graphs[ii] {
        Some(tg) => {
            let Some(buf) = tg.buffer_by_name(&binding.param) else {
                return 1;
            };
            tg.tasks
                .iter()
                .flat_map(|t| t.reads.iter().chain(t.writes.iter()))
                .filter(|a| a.buffer == buf)
                .map(|a| a.count)
                .max()
                .unwrap_or(1)
        }
        None => {
            // Black box: position of the binding among inputs/outputs selects
            // the interface entry.
            let Some(bb) = registry.black_box(&inst.module_name) else {
                return 1;
            };
            let position = inst
                .bindings
                .iter()
                .filter(|b| b.out == binding.out)
                .position(|b| b.channel == channel)
                .unwrap_or(0);
            let counts = if binding.out {
                &bb.production
            } else {
                &bb.consumption
            };
            counts.get(position).copied().unwrap_or(1).max(1)
        }
    }
}

/// Derive the component of a black-box module instance from its registered
/// interface (maximum rates and response time only).
fn derive_black_box(
    cta: &mut CtaModel,
    inst: &oil_lang::sema::ModuleInstance,
    registry: &FunctionRegistry,
) -> (ComponentId, BTreeMap<ChannelId, StreamPorts>) {
    let comp = cta.add_component(format!("w_{}", inst.path), None);
    let interface = registry.black_box(&inst.module_name);
    let rho = exact(
        interface
            .map(|i| i.response_time)
            .unwrap_or(registry.default_response_time),
    );

    let inputs: Vec<&oil_lang::sema::Binding> = inst.bindings.iter().filter(|b| !b.out).collect();
    let outputs: Vec<&oil_lang::sema::Binding> = inst.bindings.iter().filter(|b| b.out).collect();
    let consumption = |k: usize| -> u64 {
        interface
            .and_then(|i| i.consumption.get(k).copied())
            .unwrap_or(1)
            .max(1)
    };
    let production = |k: usize| -> u64 {
        interface
            .and_then(|i| i.production.get(k).copied())
            .unwrap_or(1)
            .max(1)
    };

    let mut ports = BTreeMap::new();
    let mut in_ports = Vec::new();
    let mut out_ports = Vec::new();
    for (k, b) in inputs.iter().enumerate() {
        let max_rate = Rational::from_int(consumption(k) as i128) / rho;
        let input = cta.add_port(comp, format!("{}_in", b.param), Some(max_rate));
        let output = cta.add_port(comp, format!("{}_space", b.param), None);
        // Space for an input is released when the firing completes.
        cta.connect(input, output, rho, Rational::ZERO, Rational::ONE);
        ports.insert(b.channel, StreamPorts { input, output });
        in_ports.push((input, consumption(k)));
    }
    for (k, b) in outputs.iter().enumerate() {
        let max_rate = Rational::from_int(production(k) as i128) / rho;
        let output = cta.add_port(comp, format!("{}_out", b.param), Some(max_rate));
        let input = cta.add_port(comp, format!("{}_free", b.param), None);
        // Production happens a response time after the space was available.
        cta.connect(input, output, rho, Rational::ZERO, Rational::ONE);
        ports.insert(b.channel, StreamPorts { input, output });
        out_ports.push((output, production(k)));
    }
    // Couple inputs to outputs: the firing rate relates all rates; the ratio
    // between stream rates is production/consumption (Fig. 8).
    for &(ip, c) in &in_ports {
        for &(op, p) in &out_ports {
            cta.connect(
                ip,
                op,
                rho,
                Rational::ZERO,
                Rational::new(p as i128, c as i128),
            );
        }
    }
    // Tie multiple inputs together (atomic consumption, Fig. 7's zero-delay
    // connections).
    for w in in_ports.windows(2) {
        let (a, ca) = w[0];
        let (b, cb) = w[1];
        cta.connect(
            a,
            b,
            Rational::ZERO,
            Rational::ZERO,
            Rational::new(cb as i128, ca as i128),
        );
        cta.connect(
            b,
            a,
            Rational::ZERO,
            Rational::ZERO,
            Rational::new(ca as i128, cb as i128),
        );
    }
    (comp, ports)
}

/// Derive the component hierarchy of one sequential module instance from its
/// task graph.
fn derive_seq_instance(
    cta: &mut CtaModel,
    inst: &oil_lang::sema::ModuleInstance,
    tg: &TaskGraph,
    _registry: &FunctionRegistry,
) -> (ComponentId, BTreeMap<ChannelId, StreamPorts>) {
    let module_comp = cta.add_component(format!("w_{}", inst.path), None);

    // One component per while-loop, nested per the loop tree.
    let mut loop_comp: IndexVec<LoopId, ComponentId> =
        IndexVec::from_elem(module_comp, tg.loops.len());
    for l in &tg.loops {
        let parent = l.parent.map(|p| loop_comp[p]).unwrap_or(module_comp);
        loop_comp[l.id] = cta.add_component(format!("w_{}_loop{}", inst.path, l.id), Some(parent));
    }

    // One component per task with an input and an output port; the response
    // time is the delay between them and bounds the firing rate (Fig. 7).
    let placeholder = <PortId as oil_dataflow::Idx>::new(0);
    let mut task_in: IndexVec<ActorId, PortId> = IndexVec::from_elem(placeholder, tg.tasks.len());
    let mut task_out: IndexVec<ActorId, PortId> = IndexVec::from_elem(placeholder, tg.tasks.len());
    for (ti, t) in tg.tasks.iter_enumerated() {
        let parent = t
            .loop_nest
            .last()
            .map(|&l| loop_comp[l])
            .unwrap_or(module_comp);
        let comp = cta.add_component(format!("w_{}_{}", inst.path, t.name), Some(parent));
        let rho = exact(t.response_time);
        let max_rate = if rho.is_positive() {
            Some(rho.recip())
        } else {
            None
        };
        task_in[ti] = cta.add_port(comp, "in", max_rate);
        task_out[ti] = cta.add_port(comp, "out", max_rate);
        cta.connect(
            task_in[ti],
            task_out[ti],
            rho,
            Rational::ZERO,
            Rational::ONE,
        );
    }

    // Local variable buffers: data connection per producer/consumer pair with
    // the multi-rate delay of Fig. 8, plus a capacity (space) connection.
    for (bi, b) in tg.buffers.iter_enumerated() {
        if b.stream.is_some() {
            continue; // handled by the stream wiring below
        }
        let producers = tg.producers(bi);
        let consumers = tg.consumers(bi);
        for &(p, pi) in &producers {
            for &(c, psi) in &consumers {
                if p == c {
                    continue; // read-modify-write of a local variable
                }
                // φ = ψ − ψ/π, minus any initial tokens which let the
                // consumer start earlier. Exact.
                let phi = Rational::from_int(psi as i128)
                    - Rational::new(psi as i128, pi as i128)
                    - Rational::from_int(b.initial_tokens as i128);
                let gamma = Rational::new(pi as i128, psi as i128);
                cta.connect(task_out[p], task_in[c], Rational::ZERO, phi, gamma);
                // Space connection; capacity is assigned by buffer sizing.
                cta.connect_buffer(
                    format!("{}.{}", inst.path, b.name),
                    task_out[c],
                    task_in[p],
                    Rational::ZERO,
                    Rational::ZERO,
                    Rational::new(psi as i128, pi as i128),
                );
            }
        }
    }

    // Worst-case work of one iteration of each loop: the statements of a loop
    // body execute sequentially in the original program, so the sum of their
    // response times bounds the delay between a loop's first stream access
    // and its last. The periodicity back edges below negate this bound.
    let loop_work: IndexVec<LoopId, Rational> = tg
        .loops
        .indices()
        .map(|l| {
            tg.tasks
                .iter()
                .filter(|t| t.loop_nest.contains(&l))
                .map(|t| exact(t.response_time))
                .fold(Rational::ZERO, |acc, rho| acc + rho)
        })
        .collect();

    // Stream parameters: module-level ports plus the periodicity chain of
    // Fig. 9 over the loops that access each stream.
    let mut stream_ports = BTreeMap::new();
    for binding in &inst.bindings {
        let s_in = cta.add_port(module_comp, format!("{}_in", binding.param), None);
        let s_out = cta.add_port(module_comp, format!("{}_out", binding.param), None);
        stream_ports.insert(
            binding.channel,
            StreamPorts {
                input: s_in,
                output: s_out,
            },
        );

        let Some(buf) = tg.buffer_by_name(&binding.param) else {
            continue;
        };
        let access_count_of = |task: ActorId| -> Option<u64> {
            let t = &tg.tasks[task];
            t.reads
                .iter()
                .chain(t.writes.iter())
                .filter(|a| a.buffer == buf)
                .map(|a| a.count)
                .max()
        };

        let loops = loops_accessing(tg, buf);
        if loops.is_empty() {
            // No loop accesses the stream: wire the accessing tasks directly
            // to the module ports (single-shot modules such as Fig. 4a).
            let mut prev = s_in;
            let mut accessing: Vec<ActorId> = tg
                .tasks
                .indices()
                .filter(|&t| access_count_of(t).is_some())
                .collect();
            if accessing.is_empty() {
                cta.connect(s_in, s_out, Rational::ZERO, Rational::ZERO, Rational::ONE);
                continue;
            }
            let last = *accessing.last().unwrap();
            for t in accessing.drain(..) {
                let n = access_count_of(t).unwrap().max(1);
                cta.connect(
                    prev,
                    task_in[t],
                    Rational::ZERO,
                    Rational::ZERO,
                    Rational::new(1, n as i128),
                );
                prev = task_out[t];
                if t == last {
                    cta.connect(
                        prev,
                        s_out,
                        Rational::ZERO,
                        Rational::ZERO,
                        Rational::new(n as i128, 1),
                    );
                }
            }
            continue;
        }

        // Per accessing loop: loop-level stream ports, wired to the accessing
        // tasks inside. The multi-rate granularity of the colon notation is
        // accounted for once, on the application-level channel connection
        // (Fig. 8's phi); within the module the connections carry the gamma
        // ratios only. The back edge inside each loop component enforces
        // strict periodicity: its delay is the negated sum of the delays on
        // the forward path (the loop's sequential work plus one stream
        // period), as described for Fig. 9.
        let mut loop_stream_ports: Vec<(PortId, PortId, Rational)> = Vec::new();
        for &l in &loops {
            let lc = loop_comp[l];
            let l_in = cta.add_port(lc, format!("{}_in", binding.param), None);
            let l_out = cta.add_port(lc, format!("{}_out", binding.param), None);
            // Wire tasks of this loop (innermost or nested) that access the
            // stream; the forward-path delay bound is the loop's whole
            // iteration work (statements execute sequentially).
            let mut wired_any = false;
            let path_eps = loop_work[l];
            for (ti, t) in tg.tasks.iter_enumerated() {
                if !t.loop_nest.contains(&l) {
                    continue;
                }
                // Only wire at the outermost accessing loop level to avoid
                // duplicate rate constraints for nested loops.
                if t.loop_nest.first() != Some(&l) && t.loop_nest.last() != Some(&l) {
                    continue;
                }
                if let Some(n) = access_count_of(ti) {
                    let n = n.max(1);
                    cta.connect(
                        l_in,
                        task_in[ti],
                        Rational::ZERO,
                        Rational::ZERO,
                        Rational::new(1, n as i128),
                    );
                    cta.connect(
                        task_out[ti],
                        l_out,
                        Rational::ZERO,
                        Rational::ZERO,
                        Rational::new(n as i128, 1),
                    );
                    wired_any = true;
                }
            }
            if !wired_any {
                cta.connect(l_in, l_out, Rational::ZERO, Rational::ZERO, Rational::ONE);
            }
            // Strict periodicity inside the loop: the next access is at most
            // one stream period later than the forward path implies (back
            // edge with the negated forward path delay).
            cta.connect(
                l_out,
                l_in,
                -path_eps,
                Rational::from_int(-1),
                Rational::ONE,
            );
            loop_stream_ports.push((l_in, l_out, path_eps));
        }

        // Chain the loops in program order with one stream period of delay
        // between consecutive accesses, then close the chain through the
        // module ports with the negated total delay of the forward path
        // (Fig. 9: the 1/rx connections between wp0 and wp1 and the -2/rx
        // back connection; the delay into the output port is folded into the
        // channel-level granularity term).
        cta.connect(
            s_in,
            loop_stream_ports[0].0,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        for w in loop_stream_ports.windows(2) {
            let (_, prev_out, _) = w[0];
            let (next_in, _, _) = w[1];
            cta.connect(
                prev_out,
                next_in,
                Rational::ZERO,
                Rational::ONE,
                Rational::ONE,
            );
        }
        let (_, last_out, _) = *loop_stream_ports.last().unwrap();
        cta.connect(
            last_out,
            s_out,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        let between = Rational::from_int((loop_stream_ports.len() - 1) as i128);
        let total_eps = loop_stream_ports
            .iter()
            .fold(Rational::ZERO, |acc, (_, _, e)| acc + *e);
        cta.connect(s_out, s_in, -total_eps, -between, Rational::ONE);
    }

    (module_comp, stream_ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_lang::registry::{BlackBoxInterface, FunctionSignature};
    use oil_lang::{analyze, parse_program};

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "h", "k", "init", "src", "snk", "LPF", "resamp"] {
            r.register(FunctionSignature::pure(f, 1e-7));
        }
        r
    }

    fn derive(src: &str, reg: &FunctionRegistry) -> (DerivedModel, AnalyzedProgram) {
        let program = parse_program(src).unwrap();
        let analyzed = analyze(&program, reg).unwrap();
        (derive_cta_model(&analyzed, reg), analyzed)
    }

    #[test]
    fn fig2c_rate_conversion_derives_consistent_model() {
        let reg = registry();
        let (derived, analyzed) = derive(
            r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
            "#,
            &reg,
        );
        assert_eq!(derived.instance_components.len(), 2);
        // Buffer sizing makes the model consistent; before sizing the
        // zero-capacity FIFOs may form positive cycles, so size first.
        let sizing = oil_cta::size_buffers(&derived.cta).unwrap();
        let mut sized = derived.cta.clone();
        oil_cta::buffersizing::apply_capacities(&mut sized, &sizing.capacities);
        // No source pins the rates here, so the modules settle at their
        // maximal achievable rates.
        let result = sized.consistency_at_maximal_rates().unwrap();

        // Module B must run exactly 3/2 times as fast as module A: compare
        // the task port rates of the two single tasks.
        let a_inst = analyzed.graph.instance_named("A").unwrap().0;
        let b_inst = analyzed.graph.instance_named("B").unwrap().0;
        let a_comp = derived.instance_components[a_inst];
        let b_comp = derived.instance_components[b_inst];
        // Find the *loop* task component nested under each module component:
        // module A's is `A_t0_f`, module B's is `B_t1_g` (its `t0` is the
        // prologue `init` task, which forms an isolated constraint component
        // with no meaningful steady-state rate). Iterating in order and
        // keeping the last match selects the loop task for both.
        let task_rate = |module_comp: ComponentId, task_fn: &str| -> Rational {
            let mut rate = None;
            for (ci, c) in sized.components.iter_enumerated() {
                let mut anc = Some(ci);
                let mut is_descendant = false;
                while let Some(a) = anc {
                    if a == module_comp {
                        is_descendant = true;
                        break;
                    }
                    anc = sized.components[a].parent;
                }
                if is_descendant && c.name.ends_with(task_fn) {
                    rate = Some(result.rates[sized.components[ci].ports[0]]);
                }
            }
            rate.expect("task component found")
        };
        let ra = task_rate(a_comp, "_f");
        let rb = task_rate(b_comp, "_g");
        assert_eq!(rb / ra, Rational::new(3, 2), "rb/ra = {}", rb / ra);
    }

    #[test]
    fn source_sink_program_runs_at_required_rate() {
        let reg = registry();
        let (derived, _) = derive(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                start x 5 ms before y;
                W(x, out y)
            }
            "#,
            &reg,
        );
        let sizing = oil_cta::size_buffers(&derived.cta).unwrap();
        let mut sized = derived.cta.clone();
        oil_cta::buffersizing::apply_capacities(&mut sized, &sizing.capacities);
        let result = sized.check_consistency().unwrap();
        // The source data port runs at exactly 1 kHz.
        let src_comp = sized.component_by_name("w_src_src").unwrap();
        let data = sized.port_by_name(src_comp, "data").unwrap();
        assert_eq!(result.rates[data], Rational::from_int(1000));
    }

    #[test]
    fn infeasible_latency_constraint_is_detected() {
        let mut reg = registry();
        reg.register(FunctionSignature::pure("slow", 20e-3));
        let program = parse_program(
            r#"
            mod seq W(int a, out int b){ loop{ slow(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 10 Hz;
                sink int y = snk() @ 10 Hz;
                start x 5 ms before y;
                W(x, out y)
            }
            "#,
        )
        .unwrap();
        let analyzed = analyze(&program, &reg).unwrap();
        let derived = derive_cta_model(&analyzed, &reg);
        // The 20 ms response time cannot satisfy a 5 ms end-to-end bound,
        // no matter the buffer capacities.
        assert!(oil_cta::size_buffers(&derived.cta).is_err());
    }

    #[test]
    fn multi_rate_modules_scale_rates_through_gamma() {
        // A downsampler by 4 between a 8 kHz source and a 2 kHz sink.
        let reg = registry();
        let (derived, _) = derive(
            r#"
            mod seq Down(int a, out int b){ loop{ f(a:4, out b); } while(1); }
            mod par D(){
                source int x = src() @ 8 kHz;
                sink int y = snk() @ 2 kHz;
                Down(x, out y)
            }
            "#,
            &reg,
        );
        let sizing = oil_cta::size_buffers(&derived.cta).unwrap();
        let mut sized = derived.cta.clone();
        oil_cta::buffersizing::apply_capacities(&mut sized, &sizing.capacities);
        assert!(sized.check_consistency().is_ok());
    }

    #[test]
    fn mismatched_rate_conversion_is_inconsistent() {
        // Downsampling by 4 but the sink expects half the source rate:
        // 8 kHz / 4 = 2 kHz != 4 kHz.
        let reg = registry();
        let (derived, _) = derive(
            r#"
            mod seq Down(int a, out int b){ loop{ f(a:4, out b); } while(1); }
            mod par D(){
                source int x = src() @ 8 kHz;
                sink int y = snk() @ 4 kHz;
                Down(x, out y)
            }
            "#,
            &reg,
        );
        assert!(derived.cta.check_consistency().is_err());
        assert!(oil_cta::size_buffers(&derived.cta).is_err());
    }

    #[test]
    fn fig9a_two_loops_create_nested_components_and_periodicity_edges() {
        let reg = registry();
        let (derived, _) = derive(
            r#"
            mod seq A(int x, out int o){
                loop{ y = f(x); o = f(y); } while(...);
                loop{ g(x, y, out o); } while(...);
            }
            mod par T(){
                source int s = src() @ 1 kHz;
                sink int t = snk() @ 1 kHz;
                A(s, out t)
            }
            "#,
            &reg,
        );
        // Two loop components nested in the module component.
        let module = derived.cta.component_by_name("w_T.A").unwrap();
        let children = derived.cta.children(module);
        assert!(children.len() >= 2);
        // Periodicity back edges exist: connections with negative phi not
        // tagged as buffers.
        let back_edges = derived
            .cta
            .connections
            .iter()
            .filter(|c| c.phi.is_negative() && c.buffer.is_none())
            .count();
        assert!(
            back_edges >= 2,
            "expected per-loop and per-module back edges, got {back_edges}"
        );
        let sizing = oil_cta::size_buffers(&derived.cta).unwrap();
        assert!(sizing.total_tokens() >= 1);
    }

    #[test]
    fn black_box_instance_uses_registered_interface() {
        let mut reg = registry();
        reg.register_black_box(BlackBoxInterface::new("Decim", vec![8], vec![1], 1e-6));
        let (derived, analyzed) = derive(
            r#"
            mod par T(){
                source int s = src() @ 32 kHz;
                sink int t = snk() @ 4 kHz;
                Decim(s, out t)
            }
            "#,
            &reg,
        );
        assert!(analyzed.graph.instances.iter().all(|i| i.black_box));
        let sizing = oil_cta::size_buffers(&derived.cta).unwrap();
        let mut sized = derived.cta.clone();
        oil_cta::buffersizing::apply_capacities(&mut sized, &sizing.capacities);
        // 32 kHz / 8 = 4 kHz matches the sink: consistent.
        assert!(sized.check_consistency().is_ok());
    }

    #[test]
    fn channel_ports_are_populated_for_all_channels() {
        let reg = registry();
        let (derived, analyzed) = derive(
            r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                fifo int m;
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                W(x, out m) || W(m, out y)
            }
            "#,
            &reg,
        );
        assert_eq!(derived.channel_ports.len(), analyzed.graph.channels.len());
        for (ci, ports) in derived.channel_ports.iter_enumerated() {
            assert!(
                ports.data_out.is_some() || !ports.reader_in.is_empty(),
                "channel {ci} has no ports"
            );
        }
    }
}
