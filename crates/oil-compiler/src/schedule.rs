//! Quasi-static schedule synthesis: periodic static-order schedules.
//!
//! The paper's premise is that OIL's restrictions make the multi-rate
//! schedule *statically derivable*: the compiler knows the repetition
//! vector, the rate ratios and the CTA buffer bounds, so the expensive part
//! of execution — deciding *what fires next* — can be settled at compile
//! time in polynomial time. This pass does exactly that. From an
//! [`RtGraph`] and its [`RtPlan`] it synthesises one **periodic
//! static-order schedule per worker**: a finite firing list whose one
//! iteration fires every scheduling unit exactly its repetition count, so a
//! runtime engine (`oil_rt::staticsched`) can replay the list in a loop
//! with **zero readiness scanning** — the only synchronisation left is
//! blocking push/pop on the buffers that cross a worker boundary, and the
//! partitioning below minimises those crossings.
//!
//! Synthesis in four steps:
//!
//! 1. **Units.** Each uncontested node is a unit. A *uniform* serial
//!    cluster (modal `if`/`switch` twins with identical access lists,
//!    [`RtPlan::cluster_uniform`]) collapses into one **quasi-static**
//!    unit: at run time both engines' deterministic tie-break (the
//!    calendar's id-ordered admission, the self-timed snapshot scan) always
//!    selects the lowest-id member — twins become ready together and the
//!    lowest id wins every time — so the branch arbitration is resolved
//!    *at synthesis time*: the unit fires the representative, and the
//!    firing order around it is fixed. The guard is data-opaque and every
//!    branch moves identical tokens, which is what makes the schedule
//!    quasi-static rather than dynamic. A **non-uniform** cluster (members
//!    gated on disjoint inputs) resolves by token arrival at run time; it is
//!    admitted as a single **modal unit** with one schedule arm per member
//!    when the members share one aggregated write list and read pairwise
//!    disjoint buffers (see [`modal_admission`]): the unit consumes the
//!    union of all members' inputs every firing and fires the arm a
//!    [`ModeScript`] selects, so token flow is mode-independent and the
//!    per-mode schedules differ only in which kernel runs — hot switching
//!    needs no pipeline drain, and [`StaticSchedule::validate_transitions`]
//!    re-proves admission across every (mode, mode') seam by exact integer
//!    replay. Clusters outside that shape are rejected
//!    ([`ScheduleError::NonUniformCluster`]) and the caller falls back to
//!    the self-timed engine. Sources and sinks are units of their own.
//! 2. **Repetition vector.** The SDF view over units (collapsing makes
//!    every buffer single-producer/single-consumer) yields the per-unit
//!    firing counts `q` of one graph iteration, per weakly-connected
//!    component.
//! 3. **Admission.** A greedy bursting replay — fire each enabled unit as
//!    often as tokens and CTA-sized capacities allow, round-robin until the
//!    iteration completes — constructs the global firing order. Data-driven
//!    firing is *persistent* on single-producer/single-consumer graphs
//!    (firing one unit never disables another), so the greedy order
//!    completes whenever any order does. The order is then **validated** by
//!    exact integer token accounting ([`StaticSchedule::validate`]): a
//!    schedule is admitted only if replaying it never underflows a buffer
//!    and never exceeds the CTA-sized capacity — which is what lets the
//!    engine drop all runtime checks on intra-worker edges.
//! 4. **Partitioning.** Units are assigned to `workers` workers by
//!    weakly-connected component, balanced by kernel cost estimates
//!    (`q[u] ·` response time). When components outnumber workers each
//!    component stays whole (zero crossings); otherwise workers are
//!    apportioned to components by cost and each component is cut into
//!    contiguous segments of its dataflow order, so a pipeline splits at
//!    stage boundaries — one crossing buffer per cut. Each worker's list is
//!    the projection of the global order onto its units; because every
//!    buffer has one producer and one consumer, replaying the projections
//!    concurrently (blocking only on cross-worker buffers) reproduces
//!    exactly the admitted global interleaving's token bounds.
//!
//! The schedule is *periodic*: one iteration returns every buffer to its
//! starting level (the repetition-vector property), so validating a single
//! iteration from the initial state covers the whole run, and the engine
//! needs no quiescence protocol — it executes a pre-computed number of
//! iterations and stops.

use crate::costmodel::KernelCostModel;
use crate::rtgraph::{RtBufferId, RtGraph, RtNodeId, RtPlan, RtSinkId, RtSourceId};
use oil_dataflow::index::{Idx, IndexVec};
use oil_dataflow::sdf::SdfGraph;
use oil_dataflow::Rational;
use std::collections::BTreeMap;

/// Budget on total firings in one schedule period: beyond this the schedule
/// would not amortise its own memory traffic and the caller should fall
/// back to a dynamic engine.
pub const MAX_PERIOD_FIRINGS: u64 = 1 << 22;

/// Why a graph admits no static-order schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A non-uniform serial cluster that the per-mode synthesis cannot
    /// admit as a modal unit: its members diverge in their write sets,
    /// share read buffers, or it is not the only non-uniform cluster of
    /// the graph. (`oil_rt::selftimed` handles these by pinning the
    /// component to one worker.)
    NonUniformCluster {
        /// Index into [`RtPlan::clusters`].
        cluster: u32,
        /// The member node names, ascending by node id — so a failing
        /// corpus seed is diagnosable from the message alone.
        members: Vec<String>,
    },
    /// The SDF view of the graph has no repetition vector (rate
    /// inconsistency or overflow) — nothing periodic exists to schedule.
    NoRepetitionVector {
        /// The underlying SDF error, rendered.
        reason: String,
    },
    /// One period would exceed [`MAX_PERIOD_FIRINGS`] firings.
    PeriodTooLong {
        /// Firings one iteration requires.
        firings: u64,
    },
    /// The greedy admission replay stalled before completing the
    /// iteration: the CTA-sized capacities cannot carry one full period
    /// (the same graphs deadlock under self-timed execution).
    Stuck {
        /// Firings admitted before the stall.
        admitted: u64,
        /// Firings the iteration requires.
        required: u64,
    },
    /// The CTA-bounded worst-case source-to-sink latency across a mode
    /// switch seam (drain the outgoing period, run the transition program,
    /// fill the incoming period) exceeds the program's latency constraint.
    SeamLatency {
        /// Outgoing mode.
        from: u32,
        /// Incoming mode.
        to: u32,
        /// The actual seam latency in seconds, exact.
        latency: Rational,
        /// The violated bound in seconds.
        bound: Rational,
    },
    /// Post-construction validation failed; the message names the buffer
    /// and step. Reaching this is a synthesis bug, not a property of the
    /// program.
    Invalid(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NonUniformCluster { cluster, members } => write!(
                f,
                "serial cluster #{cluster} [{}] is non-uniform and not modal-admissible: \
                 its members diverge in write sets, share read buffers, or it is not \
                 the only non-uniform cluster — the merge order is data-dependent and \
                 admits no per-mode static-order schedule",
                members.join(", ")
            ),
            ScheduleError::NoRepetitionVector { reason } => {
                write!(f, "no repetition vector: {reason}")
            }
            ScheduleError::PeriodTooLong { firings } => write!(
                f,
                "one schedule period needs {firings} firings \
                 (budget {MAX_PERIOD_FIRINGS})"
            ),
            ScheduleError::Stuck { admitted, required } => write!(
                f,
                "admission stalled after {admitted} of {required} firings: the \
                 CTA-sized capacities cannot carry one schedule period"
            ),
            ScheduleError::SeamLatency {
                from,
                to,
                latency,
                bound,
            } => write!(
                f,
                "mode switch {from}->{to}: worst-case seam latency {}s exceeds \
                 the latency bound {}s",
                latency.to_f64(),
                bound.to_f64()
            ),
            ScheduleError::Invalid(message) => write!(f, "schedule validation: {message}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Caller-supplied synthesis knobs. The environment is consulted only by
/// [`SynthesisConfig::from_env`] — call it once at a process entry point
/// (CLI, bench main, test harness setup) and thread the value through,
/// instead of re-reading `OIL_RT_FUSION` inside every synthesis, which is
/// racy when tests mutate the environment across threads and invisible to
/// callers.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Run the fusion pass (super-step coalescing; see [`FusedRun`]).
    pub fusion: bool,
    /// Worst-case source-to-sink latency (seconds) a mode-switch seam may
    /// introduce, enforced by the CTA seam-latency check in
    /// [`StaticSchedule::validate_transitions`] for mode-dependent
    /// schedules. `None` leaves the seam latency unconstrained (it is still
    /// computed and reported in [`ModeDependent::seam_latency_max`]).
    pub seam_latency_bound: Option<Rational>,
    /// Measured per-kernel costs steering `partition_workers`. `None`
    /// balances on the declared CTA response times (the historical
    /// behaviour, byte-identical schedules). `Some` balances on measured
    /// ns/firing, falling back to the declared response (scaled to ns) for
    /// functions the model has not calibrated — placement only, the
    /// partition is still proven by the exact-integer replay either way.
    pub cost_model: Option<KernelCostModel>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            fusion: true,
            seam_latency_bound: None,
            cost_model: None,
        }
    }
}

impl SynthesisConfig {
    /// Read the configuration from the environment once (`OIL_RT_FUSION=0`
    /// disables fusion, `1` or unset enables it; anything else is a loud
    /// error — see [`fusion_enabled`]. `OIL_COST_MODEL=<path>` loads a
    /// measured cost model, loud on junk — see
    /// [`KernelCostModel::from_env`]).
    pub fn from_env() -> Self {
        SynthesisConfig {
            fusion: fusion_enabled(),
            seam_latency_bound: None,
            cost_model: KernelCostModel::from_env(),
        }
    }
}

/// A scripted mode-change sequence: which arm of the modal unit each of
/// its firings executes. This is the compile-side stand-in for the
/// run-time mode-change tokens of the paper's `if`/`switch` guards — the
/// engines consult it per modal firing, so a switch takes effect *at* a
/// firing boundary with no pipeline drain (token flow is arm-independent
/// under union-advance, so the rest of the schedule never notices).
///
/// The default script runs arm 0 forever.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModeScript {
    /// Arm before the first switch point.
    pub initial: u32,
    /// `(firing index, arm)` pairs, ascending by firing index: from the
    /// modal unit's `index`-th firing onward, run `arm` (until the next
    /// entry takes over).
    pub switches: Vec<(u64, u32)>,
}

impl ModeScript {
    /// A script that never switches.
    pub fn constant(arm: u32) -> Self {
        ModeScript {
            initial: arm,
            switches: Vec::new(),
        }
    }

    /// A script from (possibly unsorted, possibly duplicated) switch
    /// points: entries are sorted by firing index and duplicates collapse
    /// to the *last* entry given for that index — the entry [`Self::arm_at`]
    /// would have let win anyway, so normalisation never changes the arm
    /// sequence, it only makes the representation canonical.
    pub fn new(initial: u32, mut switches: Vec<(u64, u32)>) -> Self {
        switches.sort_by_key(|&(at, _)| at);
        switches.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        ModeScript { initial, switches }
    }

    /// Check every arm index against the `arms` that exist. The engines'
    /// scripted entry points call this (via [`Self::validate`]) before
    /// executing, so an out-of-range arm is a loud, immediate error instead
    /// of a silently-clamped firing deep in the run.
    pub fn validate_arms(&self, arms: usize) -> Result<(), String> {
        let check = |what: &str, arm: u32| -> Result<(), String> {
            if (arm as usize) < arms {
                Ok(())
            } else {
                Err(format!(
                    "mode script {what} selects arm {arm}, but only arms \
                     0..{arms} exist"
                ))
            }
        };
        check("initial arm", self.initial)?;
        for &(at, arm) in &self.switches {
            check(&format!("switch point at firing {at}"), arm)?;
        }
        Ok(())
    }

    /// [`Self::validate_arms`] against a schedule's modal dimension.
    pub fn validate(&self, modes: &ModalSchedule) -> Result<(), String> {
        self.validate_arms(modes.arms.len())
    }

    /// The arm the `firing`-th modal firing executes. Engines clamp the
    /// result to the arms that exist.
    pub fn arm_at(&self, firing: u64) -> u32 {
        let mut arm = self.initial;
        for &(at, a) in &self.switches {
            if at <= firing {
                arm = a;
            } else {
                break;
            }
        }
        arm
    }
}

/// What one scheduling unit is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitKind {
    /// One uncontested data-driven node.
    Node(RtNodeId),
    /// A uniform modal cluster, quasi-statically resolved: the firing
    /// executes `representative` (the lowest-id member — the choice both
    /// dynamic engines' tie-breaks make at every decision), the remaining
    /// `members` are starved, exactly as under dynamic execution.
    Cluster {
        /// The member every firing executes.
        representative: RtNodeId,
        /// All members, ascending (including the representative).
        members: Vec<RtNodeId>,
    },
    /// A **modal unit**: a non-uniform cluster admitted under the
    /// union-advance rule ([`modal_admission`]). Every firing consumes the
    /// union of all members' aggregated reads and produces the shared
    /// write list; which member's kernel runs is the schedule *arm* a
    /// [`ModeScript`] selects at run time. Token flow is therefore
    /// mode-independent — one repetition vector, period and partition
    /// serve every mode, and switching arms mid-stream is sound without
    /// draining the pipeline.
    Modal {
        /// All members, ascending by node id; arm `k` fires `members[k]`.
        members: Vec<RtNodeId>,
    },
    /// A time-triggered source (one sample per firing, broadcast to every
    /// replica buffer).
    Source(RtSourceId),
    /// A sink (one value drained per firing).
    Sink(RtSinkId),
}

/// One scheduling unit with its synthesis results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleUnit {
    /// What fires.
    pub kind: UnitKind,
    /// Weakly-connected component of the unit (components iterate
    /// independently — their iteration counts are decoupled at run time).
    pub component: u32,
    /// The worker whose list contains this unit's firings.
    pub worker: usize,
    /// Firings per schedule period (the repetition-vector entry).
    pub repetitions: u64,
}

/// A run of consecutive firings of one unit inside a period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Index into [`StaticSchedule::units`].
    pub unit: u32,
    /// Consecutive firings at this position.
    pub times: u32,
}

/// A fused super-step: a chain of producer→consumer stages executed as one
/// pass over scratch memory.
///
/// Within one run, stage `i + 1` consumes *exactly* the tokens stage `i`
/// produces (`times[i] · prod == times[i+1] · cons`), and the link buffer
/// between them holds no standing tokens when the run starts — so the
/// intermediate tokens never touch a ring: the executor hands stage `i`'s
/// output slice directly to stage `i + 1`. Only the head's reads and the
/// tail's writes go through real buffers. Fusion is legal because OIL's
/// coordinated functions are side-effect-free (the paper's restriction):
/// reordering a worker's local firings changes no per-buffer value stream,
/// and the per-worker replay in [`StaticSchedule::validate`] re-proves the
/// token bounds over the fused order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedRun {
    /// The stages in dataflow order (at least two).
    pub stages: Vec<Step>,
    /// The link buffer carried in scratch between consecutive stages
    /// (`stages.len() - 1` entries).
    pub links: Vec<RtBufferId>,
    /// True when this run is its component's *entire* period: the executor
    /// may batch consecutive iterations of the run back to back (the links
    /// are scratch, so concatenating periods never overflows them).
    pub batch: bool,
}

impl FusedRun {
    /// Total firings the run executes.
    pub fn firings(&self) -> u64 {
        self.stages.iter().map(|s| s.times as u64).sum()
    }
}

/// One item of a worker's fused firing list: a plain step or a fused run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkItem {
    /// An unfused run of one unit's firings.
    Step(Step),
    /// A fused chain executed through scratch.
    Fused(FusedRun),
}

/// What the fusion pass did to a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// Fused runs across all workers.
    pub runs_fused: u32,
    /// Buffers whose ring traffic is eliminated *entirely* (every period
    /// token flows through scratch).
    pub rings_elided: u32,
    /// Longest chain (stage count) of any fused run.
    pub fused_chain_len_max: u32,
}

/// The modal dimension of a schedule: which unit is modal and which node
/// each arm dispatches to. Present iff the graph had a (modal-admissible)
/// non-uniform cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModalSchedule {
    /// Index into [`StaticSchedule::units`] of the modal unit.
    pub unit: u32,
    /// Arm `k` fires `arms[k]` (the cluster members, ascending by id).
    pub arms: Vec<RtNodeId>,
    /// The members' node names (same order), for reports and logs.
    pub arm_names: Vec<String>,
    /// `Some` when the cluster is **mode-dependent** (arms diverge in their
    /// write lists or overlap in their reads): token flow then differs per
    /// mode, so each mode carries its own repetition vector and firing
    /// order, and a switch runs the verified drain/fill transition protocol
    /// instead of hot-switching. `None` is the union-advance case, where
    /// the shared period serves every mode.
    pub dependent: Option<ModeDependent>,
}

/// The per-mode dimension of a mode-dependent schedule: one repetition
/// vector and firing order per mode, plus the compiler-derived drain/fill
/// transition program for every ordered mode pair and the CTA seam-latency
/// result. The schedule's top-level `period`/`workers`/`repetitions` are
/// mode 0's (the initial mode of the default script); the engines index
/// into these tables per executed period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeDependent {
    /// Per mode, per unit: firings per period. Units *gated* in a mode
    /// (their token flow reaches the modal unit only through arms that mode
    /// never fires) have repetition 0 there and simply do not appear in
    /// that mode's period.
    pub reps: Vec<Vec<u64>>,
    /// Per mode: the admitted global firing order of one period.
    pub periods: Vec<Vec<Step>>,
    /// Per mode, per worker: the projection of that mode's period onto the
    /// worker's units (the shared partition serves every mode).
    pub steps: Vec<Vec<Vec<Step>>>,
    /// Per ordered `(from, to)` pair (row-major, `from * modes + to`): the
    /// drain/fill transition program — the finite firing sequence, proven
    /// by exact integer replay in
    /// [`StaticSchedule::validate_transitions`], that takes mode `from`'s
    /// end-of-period buffer levels to mode `to`'s entry levels. Because
    /// every per-mode period is anchored at the initial levels (one period
    /// is level-preserving), the derived program is empty whenever
    /// derivation succeeds today; the derivation, replay and executor
    /// machinery carry non-empty programs unchanged should a future
    /// synthesis produce periods with differing entry levels.
    pub transitions: Vec<Vec<Step>>,
    /// Worst-case source-to-sink latency (seconds) across any switch seam:
    /// the maximum over ordered mode pairs of drain + transition + fill
    /// work, as bounded by the CTA seam-latency query. Exact.
    pub seam_latency_max: Rational,
    /// The bound [`StaticSchedule::validate_transitions`] enforces on the
    /// seam latency of every ordered pair (from
    /// [`SynthesisConfig::seam_latency_bound`]).
    pub seam_latency_bound: Option<Rational>,
}

impl ModeDependent {
    /// Number of modes.
    pub fn mode_count(&self) -> usize {
        self.reps.len()
    }

    /// The transition program for the ordered pair `(from, to)`.
    pub fn transition(&self, from: u32, to: u32) -> &[Step] {
        &self.transitions[from as usize * self.mode_count() + to as usize]
    }

    /// The per-mode firing rates the engines schedule by (see
    /// [`ModeDependentRates`]), extracted from the repetition tables.
    pub fn rates(&self, units: &[ScheduleUnit], graph: &RtGraph) -> ModeDependentRates {
        let modes = self.mode_count();
        let modal = units
            .iter()
            .position(|u| matches!(u.kind, UnitKind::Modal { .. }))
            .expect("a mode-dependent schedule has a modal unit");
        let mut rates = ModeDependentRates {
            modal: vec![0; modes],
            sources: vec![vec![0; graph.sources.len()]; modes],
            sinks: vec![vec![0; graph.sinks.len()]; modes],
        };
        for (m, reps) in self.reps.iter().enumerate() {
            rates.modal[m] = reps[modal];
            for (u, unit) in units.iter().enumerate() {
                match unit.kind {
                    UnitKind::Source(id) => rates.sources[m][id.index()] = reps[u],
                    UnitKind::Sink(id) => rates.sinks[m][id.index()] = reps[u],
                    _ => {}
                }
            }
        }
        rates
    }
}

/// The per-mode firing rates of a mode-dependent modal graph: what the
/// runtime engines need to plan a scripted run without holding the full
/// per-mode schedules (the self-timed engine is dynamic — it needs only
/// the period lengths and the per-period source/sink token counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeDependentRates {
    /// Per mode: modal-unit firings per period (always ≥ 1).
    pub modal: Vec<u64>,
    /// Per mode, per source (by [`RtSourceId`] index): samples produced per
    /// period (0 when the source is gated in that mode).
    pub sources: Vec<Vec<u64>>,
    /// Per mode, per sink (by [`RtSinkId`] index): values drained per
    /// period (0 when the sink is gated in that mode).
    pub sinks: Vec<Vec<u64>>,
}

/// The resolved mode sequence of one scripted run of a mode-dependent
/// program: which mode each executed period runs, and exactly how many
/// tokens every source and sink moves. Both engines execute this plan —
/// the static engine by replaying the per-mode firing lists period by
/// period, the self-timed engine by capping its source/sink budgets to the
/// planned totals and letting data-driven firing follow — which is what
/// makes their value streams bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModePlan {
    /// The mode of each executed period, in order.
    pub mode_seq: Vec<u32>,
    /// Per source (by index): total samples produced over the run. May
    /// exceed a source's natural sample budget by up to one period — the
    /// final period always runs to completion.
    pub produced: Vec<u64>,
    /// Per sink (by index): total values drained over the run.
    pub drained: Vec<u64>,
    /// Total modal-unit firings over the run.
    pub modal_firings: u64,
    /// Mode switches the plan executes (adjacent periods of different
    /// modes).
    pub mode_switches: u64,
}

/// Resolve a [`ModeScript`] against per-mode rates and source sample
/// budgets into the mode sequence a scripted run executes.
///
/// Each period's mode is the script's arm at the period's *first* modal
/// firing, clamped to the modes that exist — a switch point landing
/// mid-period therefore takes effect at the next period boundary, and the
/// trailing firings of the old period are the *drain* the transition
/// protocol accounts as `transition_firings`. The plan stops at the first
/// period that would make no source progress (every source is exhausted or
/// gated in the selected mode): a script whose pending switch points lie
/// beyond the sources' budgets — e.g. a switch at firing 1 000 000 of a
/// 250-period run — never reaches them, so such past-horizon scripts
/// execute as the constant-arm run with zero switches.
pub fn plan_mode_sequence(
    rates: &ModeDependentRates,
    script: &ModeScript,
    budget: impl Fn(RtSourceId) -> u64,
) -> ModePlan {
    let modes = rates.modal.len() as u32;
    let budgets: Vec<u64> = (0..rates.sources.first().map_or(0, Vec::len))
        .map(|s| budget(RtSourceId::new(s)))
        .collect();
    let mut plan = ModePlan {
        mode_seq: Vec::new(),
        produced: vec![0; budgets.len()],
        drained: vec![0; rates.sinks.first().map_or(0, Vec::len)],
        modal_firings: 0,
        mode_switches: 0,
    };
    loop {
        let m = script.arm_at(plan.modal_firings).min(modes - 1);
        let progress = budgets
            .iter()
            .enumerate()
            .any(|(s, &b)| plan.produced[s] < b && rates.sources[m as usize][s] > 0);
        if !progress {
            break;
        }
        if plan.mode_seq.last().is_some_and(|&prev| prev != m) {
            plan.mode_switches += 1;
        }
        plan.mode_seq.push(m);
        for (s, p) in plan.produced.iter_mut().enumerate() {
            *p += rates.sources[m as usize][s];
        }
        for (k, d) in plan.drained.iter_mut().enumerate() {
            *d += rates.sinks[m as usize][k];
        }
        plan.modal_firings += rates.modal[m as usize];
    }
    plan
}

/// Wall time of one synthesis phase, recorded by [`synthesize`] so the
/// runtime's trace layer (`oil_rt::trace`) can report where compile time
/// went (CTA admission, repetition-vector solve, firing-order proof,
/// fusion, per-mode synthesis). Excluded from [`StaticSchedule::digest`]:
/// timings are observations, not schedule structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (stable across runs; used as a trace label).
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Accumulates [`PhaseSpan`]s as synthesis walks its passes: each
/// [`PhaseTimer::lap`] closes the phase that ran since the previous lap.
struct PhaseTimer {
    last: std::time::Instant,
    phases: Vec<PhaseSpan>,
}

impl PhaseTimer {
    fn start() -> Self {
        PhaseTimer {
            last: std::time::Instant::now(),
            phases: Vec::new(),
        }
    }

    fn lap(&mut self, name: &'static str) {
        let now = std::time::Instant::now();
        self.phases.push(PhaseSpan {
            name,
            dur_ns: now.duration_since(self.last).as_nanos() as u64,
        });
        self.last = now;
    }
}

/// A synthesised periodic static-order schedule.
///
/// Equality compares schedule *structure* only: [`Self::phases`] is
/// wall-clock observation and two otherwise-identical syntheses must
/// compare equal regardless of how long their passes took.
#[derive(Debug, Clone)]
pub struct StaticSchedule {
    /// All scheduling units.
    pub units: Vec<ScheduleUnit>,
    /// The admitted global firing order of one period (run-length encoded).
    pub period: Vec<Step>,
    /// Per worker: the projection of [`Self::period`] onto its units.
    pub workers: Vec<Vec<Step>>,
    /// Number of weakly-connected components.
    pub components: u32,
    /// Per buffer: the unit producing into it (`None` when only initial
    /// tokens ever occupy it).
    pub producer_unit: IndexVec<RtBufferId, Option<u32>>,
    /// Per buffer: the unit consuming from it (`None` for unread buffers —
    /// the engine records and drops the writer's commits).
    pub consumer_unit: IndexVec<RtBufferId, Option<u32>>,
    /// Buffers whose producer and consumer live on different workers: the
    /// only places the engine synchronises.
    pub cross_buffers: Vec<RtBufferId>,
    /// Per worker: the firing list the engine actually executes — the
    /// projection of [`Self::period`] rewritten by the fusion pass (or the
    /// plain projection wrapped in [`WorkItem::Step`] when fusion is off).
    pub fused_workers: Vec<Vec<WorkItem>>,
    /// What the fusion pass did.
    pub fusion: FusionStats,
    /// Per buffer: the highest level the fused per-worker replay reaches
    /// (floored by the declared engine capacity). Fusion may push tokens
    /// into a worker-local buffer *earlier* than the unfused order did, so
    /// local rings are sized from this bound instead of the declared
    /// capacity alone; cross-worker buffers keep the declared capacity
    /// (fused runs never touch them).
    pub local_level_max: IndexVec<RtBufferId, u64>,
    /// The per-mode dimension: `Some` iff the graph had a modal-admissible
    /// non-uniform cluster. The period/worker lists are shared by every
    /// mode (union-advance makes token flow mode-independent); the arms
    /// differ only in which member kernel the modal unit dispatches to.
    pub modes: Option<ModalSchedule>,
    /// Wall time of each synthesis phase, in pass order. Observational
    /// only: not part of [`Self::digest`] and never compared by the
    /// golden corpus.
    pub phases: Vec<PhaseSpan>,
    /// [`KernelCostModel::fingerprint`] of the measured cost model that
    /// steered the partition, `None` when declared response times did.
    /// Provenance only: excluded from equality and [`Self::digest`], like
    /// [`Self::phases`] — two syntheses that landed on the same structure
    /// are the same schedule regardless of what steered the balance.
    pub cost_model_hash: Option<u64>,
    /// Per worker: predicted utilization under the cost vector the
    /// partitioner balanced (worker load / heaviest worker load, in
    /// `(0, 1]`). Observational, excluded from equality and digest.
    pub predicted_utilization: Vec<f64>,
}

impl PartialEq for StaticSchedule {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `phases` (wall time, nondeterministic) and the
        // cost-model provenance (`cost_model_hash`,
        // `predicted_utilization` — observational, not structure).
        self.units == other.units
            && self.period == other.period
            && self.workers == other.workers
            && self.components == other.components
            && self.producer_unit == other.producer_unit
            && self.consumer_unit == other.consumer_unit
            && self.cross_buffers == other.cross_buffers
            && self.fused_workers == other.fused_workers
            && self.fusion == other.fusion
            && self.local_level_max == other.local_level_max
            && self.modes == other.modes
    }
}

impl Eq for StaticSchedule {}

impl StaticSchedule {
    /// Worker count of the schedule.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Total firings in one period.
    pub fn period_firings(&self) -> u64 {
        self.period.iter().map(|s| s.times as u64).sum()
    }

    /// Iterations each component must execute so that the periodic replay
    /// *covers* a data-driven (self-timed) execution with the given source
    /// sample budgets: enough that every unit fires at least as often as
    /// the maximal data-driven run would.
    ///
    /// A data-driven engine drains the pipeline at end of run — including
    /// firings enabled by standing initial-token stock that a periodic
    /// (level-preserving) schedule never consumes — so covering the source
    /// budgets alone is not enough. This computes the exact maximal firing
    /// counts `N[u]` as the greatest fixpoint of
    /// `N[u] = min_b ⌊(initial(b) + prod(b)·N[producer(b)]) / cons(b)⌋`
    /// seeded with `N[source] = budget`, then takes
    /// `max_u ⌈N[u] / q[u]⌉` per component. Units a budget constraint never
    /// reaches (source-free cycles, which a data-driven engine would spin
    /// on forever) contribute nothing; a component with no bounded units
    /// iterates zero times.
    pub fn covering_iterations(
        &self,
        graph: &RtGraph,
        budget: impl Fn(RtSourceId) -> u64,
    ) -> Vec<u64> {
        const UNBOUNDED: u128 = u128::MAX;
        let access = unit_access(graph, &self.units);
        let mut n: Vec<u128> = self
            .units
            .iter()
            .map(|u| match u.kind {
                UnitKind::Source(id) => budget(id) as u128,
                _ => UNBOUNDED,
            })
            .collect();
        // Downward fixpoint iteration; the pass cap only guards adversarial
        // lossy cycles — stopping early leaves an over-estimate, which is
        // the safe direction (the replay runs a few more level-preserving
        // iterations than strictly needed).
        for _pass in 0..self.units.len().max(1) * 64 {
            let mut changed = false;
            for (u, a) in access.iter().enumerate() {
                if matches!(self.units[u].kind, UnitKind::Source(_)) {
                    continue;
                }
                let mut bound = UNBOUNDED;
                for &(b, c) in &a.reads {
                    let avail = match self.producer_unit[b] {
                        Some(p) => {
                            let pc = access[p as usize]
                                .writes
                                .iter()
                                .find(|&&(wb, _)| wb == b)
                                .map(|&(_, pc)| pc)
                                .unwrap_or(0) as u128;
                            match n[p as usize] {
                                UNBOUNDED => UNBOUNDED,
                                np => (graph.buffers[b].initial_tokens as u128)
                                    .saturating_add(pc.saturating_mul(np)),
                            }
                        }
                        None => graph.buffers[b].initial_tokens as u128,
                    };
                    if avail != UNBOUNDED {
                        bound = bound.min(avail / c.max(1) as u128);
                    }
                }
                if bound < n[u] {
                    n[u] = bound;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut iters = vec![0u64; self.components as usize];
        for (u, unit) in self.units.iter().enumerate() {
            if unit.repetitions == 0 || n[u] == UNBOUNDED {
                continue;
            }
            let need = u64::try_from(n[u].div_ceil(unit.repetitions as u128)).unwrap_or(u64::MAX);
            let slot = &mut iters[unit.component as usize];
            *slot = (*slot).max(need);
        }
        iters
    }

    /// A stable FNV-1a digest of the schedule structure (units, period
    /// order, worker projections) for the golden schedule corpus.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.units.len() as u64);
        for u in &self.units {
            match &u.kind {
                UnitKind::Node(id) => {
                    h.write_u64(0);
                    h.write_u64(id.index() as u64);
                }
                UnitKind::Cluster {
                    representative,
                    members,
                } => {
                    h.write_u64(1);
                    h.write_u64(representative.index() as u64);
                    for &m in members {
                        h.write_u64(m.index() as u64);
                    }
                }
                UnitKind::Source(id) => {
                    h.write_u64(2);
                    h.write_u64(id.index() as u64);
                }
                UnitKind::Sink(id) => {
                    h.write_u64(3);
                    h.write_u64(id.index() as u64);
                }
                UnitKind::Modal { members } => {
                    h.write_u64(4);
                    for &m in members {
                        h.write_u64(m.index() as u64);
                    }
                }
            }
            h.write_u64(u.component as u64);
            h.write_u64(u.worker as u64);
            h.write_u64(u.repetitions);
        }
        h.write_u64(self.period.len() as u64);
        for s in &self.period {
            h.write_u64(s.unit as u64);
            h.write_u64(s.times as u64);
        }
        h.write_u64(self.workers.len() as u64);
        for w in &self.workers {
            h.write_u64(w.len() as u64);
            for s in w {
                h.write_u64(s.unit as u64);
                h.write_u64(s.times as u64);
            }
        }
        for items in &self.fused_workers {
            h.write_u64(items.len() as u64);
            for item in items {
                match item {
                    WorkItem::Step(s) => {
                        h.write_u64(0);
                        h.write_u64(s.unit as u64);
                        h.write_u64(s.times as u64);
                    }
                    WorkItem::Fused(run) => {
                        h.write_u64(1);
                        h.write_u64(run.stages.len() as u64);
                        for s in &run.stages {
                            h.write_u64(s.unit as u64);
                            h.write_u64(s.times as u64);
                        }
                        for &b in &run.links {
                            h.write_u64(b.index() as u64);
                        }
                        h.write_u64(run.batch as u64);
                    }
                }
            }
        }
        if let Some(m) = &self.modes {
            h.write_u64(5);
            h.write_u64(m.unit as u64);
            for &a in &m.arms {
                h.write_u64(a.index() as u64);
            }
            // Mode-dependent tables only: union-advance digests are
            // byte-for-byte what they were before per-mode synthesis
            // existed, so the golden corpus M-lines stay stable.
            if let Some(dep) = &m.dependent {
                h.write_u64(6);
                for reps in &dep.reps {
                    h.write_u64(reps.len() as u64);
                    for &r in reps {
                        h.write_u64(r);
                    }
                }
                for period in &dep.periods {
                    h.write_u64(period.len() as u64);
                    for s in period {
                        h.write_u64(s.unit as u64);
                        h.write_u64(s.times as u64);
                    }
                }
                for lists in &dep.steps {
                    for w in lists {
                        h.write_u64(w.len() as u64);
                        for s in w {
                            h.write_u64(s.unit as u64);
                            h.write_u64(s.times as u64);
                        }
                    }
                }
                for t in &dep.transitions {
                    h.write_u64(t.len() as u64);
                    for s in t {
                        h.write_u64(s.unit as u64);
                        h.write_u64(s.times as u64);
                    }
                }
            }
        }
        h.finish()
    }

    /// [`Self::digest`] specialised to one mode: mixes the arm index and
    /// the member node it dispatches to into the structural digest, for
    /// the per-mode lines of the golden schedule corpus.
    pub fn digest_mode(&self, arm: u32) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.digest());
        h.write_u64(arm as u64);
        if let Some(m) = &self.modes {
            let member = m
                .arms
                .get(arm as usize)
                .map(|a| a.index() as u64)
                .unwrap_or(u64::MAX);
            h.write_u64(member);
            // For mode-dependent schedules the mode also carries its own
            // repetition vector and firing order; mix them in (no-op for
            // union-advance, keeping those corpus lines stable).
            if let Some(dep) = &m.dependent {
                if let (Some(reps), Some(period)) =
                    (dep.reps.get(arm as usize), dep.periods.get(arm as usize))
                {
                    for &r in reps {
                        h.write_u64(r);
                    }
                    for s in period {
                        h.write_u64(s.unit as u64);
                        h.write_u64(s.times as u64);
                    }
                }
            }
        }
        h.finish()
    }

    /// [`Self::digest`] specialised to one ordered mode pair's transition:
    /// mixes the pair and its drain/fill program into the structural
    /// digest, for the transition lines of the golden schedule corpus.
    pub fn digest_transition(&self, from: u32, to: u32) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.digest());
        h.write_u64(from as u64);
        h.write_u64(to as u64);
        if let Some(dep) = self.modes.as_ref().and_then(|m| m.dependent.as_ref()) {
            let t = dep.transition(from, to);
            h.write_u64(t.len() as u64);
            for s in t {
                h.write_u64(s.unit as u64);
                h.write_u64(s.times as u64);
            }
        }
        h.finish()
    }

    /// Exact integer replay of the admitted period against the CTA-sized
    /// capacities: every unit fires exactly its repetition count, no read
    /// ever underflows, no ring-backed buffer ever exceeds its capacity,
    /// and the worker projections partition the period. This is the
    /// admission proof — [`synthesize`] never returns a schedule that fails
    /// it — and the oracle the schedule property tests replay
    /// independently.
    pub fn validate(&self, graph: &RtGraph) -> Result<(), ScheduleError> {
        if self.modes.as_ref().is_some_and(|m| m.dependent.is_some()) {
            return self.validate_dependent(graph);
        }
        let access = unit_access(graph, &self.units);
        let capacity: IndexVec<RtBufferId, usize> = engine_capacities(graph);
        let mut level: IndexVec<RtBufferId, u64> = graph
            .buffers
            .iter()
            .map(|b| b.initial_tokens as u64)
            .collect::<Vec<_>>()
            .into();
        let mut fired = vec![0u64; self.units.len()];
        for (pos, step) in self.period.iter().enumerate() {
            let a = &access[step.unit as usize];
            for _ in 0..step.times {
                for &(b, c) in &a.reads {
                    if level[b] < c as u64 {
                        return Err(ScheduleError::Invalid(format!(
                            "step {pos}: unit {} underflows buffer `{}`",
                            step.unit, graph.buffers[b].name
                        )));
                    }
                    level[b] -= c as u64;
                }
                for &(b, c) in &a.writes {
                    if self.consumer_unit[b].is_none() {
                        continue; // recorded and dropped by the engine
                    }
                    level[b] += c as u64;
                    if level[b] > capacity[b] as u64 {
                        return Err(ScheduleError::Invalid(format!(
                            "step {pos}: unit {} overflows buffer `{}` \
                             ({} > capacity {})",
                            step.unit, graph.buffers[b].name, level[b], capacity[b]
                        )));
                    }
                }
                fired[step.unit as usize] += 1;
            }
        }
        for (u, unit) in self.units.iter().enumerate() {
            if fired[u] != unit.repetitions {
                return Err(ScheduleError::Invalid(format!(
                    "unit {u} fired {} times in one period, repetition vector \
                     says {}",
                    fired[u], unit.repetitions
                )));
            }
        }
        // One period is state-preserving: every buffer returns to its
        // initial level, which is what makes the schedule loopable.
        for (b, buf) in graph.buffers.iter_enumerated() {
            if self.consumer_unit[b].is_some() && level[b] != buf.initial_tokens as u64 {
                return Err(ScheduleError::Invalid(format!(
                    "buffer `{}` ends the period at level {} (started at {})",
                    buf.name, level[b], buf.initial_tokens
                )));
            }
        }
        // The worker lists are exactly the per-worker projection of the
        // period.
        let mut cursors = vec![0usize; self.workers.len()];
        for step in &self.period {
            let w = self.units[step.unit as usize].worker;
            let expect = self.workers[w].get(cursors[w]);
            if expect != Some(step) {
                return Err(ScheduleError::Invalid(format!(
                    "worker {w} projection diverges from the period at step \
                     {:?}",
                    step
                )));
            }
            cursors[w] += 1;
        }
        if cursors
            .iter()
            .zip(&self.workers)
            .any(|(&c, w)| c != w.len())
        {
            return Err(ScheduleError::Invalid(
                "worker projections contain steps the period does not".into(),
            ));
        }
        self.validate_fused(graph, &access)
    }

    /// The admission proof for a **mode-dependent** schedule: every mode's
    /// period replays exactly (its repetition vector, no underflow, no
    /// capacity excess, level restoration) under that mode's access lists,
    /// every mode's worker lists partition its period, and the top-level
    /// period/worker/repetition fields mirror mode 0 (what a script-less
    /// consumer sees). Fusion is off for mode-dependent schedules — the
    /// fused lists must be the plain projections.
    fn validate_dependent(&self, graph: &RtGraph) -> Result<(), ScheduleError> {
        let modes = self.modes.as_ref().expect("dependent implies modal");
        let dep = modes.dependent.as_ref().expect("checked by caller");
        let capacity = engine_capacities(graph);
        let n_modes = dep.mode_count();
        if dep.periods.len() != n_modes || dep.steps.len() != n_modes {
            return Err(ScheduleError::Invalid(
                "per-mode table lengths disagree".into(),
            ));
        }
        if dep.transitions.len() != n_modes * n_modes {
            return Err(ScheduleError::Invalid(
                "transition table is not modes × modes".into(),
            ));
        }
        for m in 0..n_modes {
            let access = mode_access(graph, &self.units, m);
            let reps = &dep.reps[m];
            if reps.len() != self.units.len() {
                return Err(ScheduleError::Invalid(format!(
                    "mode {m}: repetition vector length diverges from the units"
                )));
            }
            if reps[modes.unit as usize] == 0 {
                return Err(ScheduleError::Invalid(format!(
                    "mode {m}: the modal unit is gated in its own mode"
                )));
            }
            let mut level: IndexVec<RtBufferId, u64> = graph
                .buffers
                .iter()
                .map(|b| b.initial_tokens as u64)
                .collect::<Vec<_>>()
                .into();
            let mut fired = vec![0u64; self.units.len()];
            for (pos, step) in dep.periods[m].iter().enumerate() {
                let a = &access[step.unit as usize];
                for _ in 0..step.times {
                    for &(b, c) in &a.reads {
                        level[b] = level[b].checked_sub(c as u64).ok_or_else(|| {
                            ScheduleError::Invalid(format!(
                                "mode {m} step {pos}: unit {} underflows buffer `{}`",
                                step.unit, graph.buffers[b].name
                            ))
                        })?;
                    }
                    for &(b, c) in &a.writes {
                        if self.consumer_unit[b].is_none() {
                            continue;
                        }
                        level[b] += c as u64;
                        if level[b] > capacity[b] as u64 {
                            return Err(ScheduleError::Invalid(format!(
                                "mode {m} step {pos}: unit {} overflows buffer `{}` \
                                 ({} > capacity {})",
                                step.unit, graph.buffers[b].name, level[b], capacity[b]
                            )));
                        }
                    }
                    fired[step.unit as usize] += 1;
                }
            }
            if fired != *reps {
                return Err(ScheduleError::Invalid(format!(
                    "mode {m}: the period does not fire the mode's repetition \
                     vector"
                )));
            }
            for (b, buf) in graph.buffers.iter_enumerated() {
                if self.consumer_unit[b].is_some() && level[b] != buf.initial_tokens as u64 {
                    return Err(ScheduleError::Invalid(format!(
                        "mode {m}: buffer `{}` ends the period at level {} \
                         (started at {})",
                        buf.name, level[b], buf.initial_tokens
                    )));
                }
            }
            // Worker lists are exactly the per-worker projection of the
            // mode's period.
            if dep.steps[m].len() != self.workers.len() {
                return Err(ScheduleError::Invalid(format!(
                    "mode {m}: worker list count diverges"
                )));
            }
            let mut cursors = vec![0usize; dep.steps[m].len()];
            for step in &dep.periods[m] {
                let w = self.units[step.unit as usize].worker;
                if dep.steps[m][w].get(cursors[w]) != Some(step) {
                    return Err(ScheduleError::Invalid(format!(
                        "mode {m}: worker {w} projection diverges from the period"
                    )));
                }
                cursors[w] += 1;
            }
            if cursors
                .iter()
                .zip(&dep.steps[m])
                .any(|(&c, w)| c != w.len())
            {
                return Err(ScheduleError::Invalid(format!(
                    "mode {m}: worker projections contain steps the period does \
                     not"
                )));
            }
        }
        // The top-level fields mirror mode 0, and fusion is off.
        if self.period != dep.periods[0] || self.workers != dep.steps[0] {
            return Err(ScheduleError::Invalid(
                "top-level period/workers do not mirror mode 0".into(),
            ));
        }
        for (u, unit) in self.units.iter().enumerate() {
            if unit.repetitions != dep.reps[0][u] {
                return Err(ScheduleError::Invalid(format!(
                    "unit {u}: top-level repetitions do not mirror mode 0"
                )));
            }
        }
        if self.fusion != FusionStats::default() {
            return Err(ScheduleError::Invalid(
                "mode-dependent schedules do not fuse".into(),
            ));
        }
        for (w, items) in self.fused_workers.iter().enumerate() {
            let plain: Vec<Step> = items
                .iter()
                .map(|i| match i {
                    WorkItem::Step(s) => Ok(*s),
                    WorkItem::Fused(_) => Err(ScheduleError::Invalid(
                        "mode-dependent schedules carry no fused runs".into(),
                    )),
                })
                .collect::<Result<_, _>>()?;
            if plain != self.workers[w] {
                return Err(ScheduleError::Invalid(format!(
                    "worker {w}: fused list is not the plain projection"
                )));
            }
        }
        Ok(())
    }

    /// Re-prove the admission property over the fused worker lists: per
    /// worker, every unit keeps its projected firing count, fused runs touch
    /// only worker-confined buffers with exactly-balanced empty links, and
    /// the per-worker replay (which fully determines every confined buffer's
    /// level) never underflows nor exceeds [`Self::local_level_max`].
    fn validate_fused(&self, graph: &RtGraph, access: &[UnitAccess]) -> Result<(), ScheduleError> {
        if self.fused_workers.len() != self.workers.len() {
            return Err(ScheduleError::Invalid(
                "fused worker list count diverges from the projections".into(),
            ));
        }
        let confined =
            confined_worker(graph, &self.units, &self.producer_unit, &self.consumer_unit);
        let port = |ports: &[(RtBufferId, usize)], b: RtBufferId| -> u64 {
            ports
                .iter()
                .find(|&&(pb, _)| pb == b)
                .map(|&(_, c)| c as u64)
                .unwrap_or(0)
        };
        for (w, items) in self.fused_workers.iter().enumerate() {
            let mut expected = vec![0u64; self.units.len()];
            for s in &self.workers[w] {
                expected[s.unit as usize] += s.times as u64;
            }
            let mut counted = vec![0u64; self.units.len()];
            let mut level: IndexVec<RtBufferId, u64> = graph
                .buffers
                .iter()
                .map(|b| b.initial_tokens as u64)
                .collect::<Vec<_>>()
                .into();
            let read = |level: &mut IndexVec<RtBufferId, u64>,
                        b: RtBufferId,
                        tokens: u64|
             -> Result<(), ScheduleError> {
                level[b] = level[b].checked_sub(tokens).ok_or_else(|| {
                    ScheduleError::Invalid(format!(
                        "fused worker {w} underflows buffer `{}`",
                        graph.buffers[b].name
                    ))
                })?;
                Ok(())
            };
            let write = |level: &mut IndexVec<RtBufferId, u64>,
                         b: RtBufferId,
                         tokens: u64|
             -> Result<(), ScheduleError> {
                level[b] += tokens;
                if level[b] > self.local_level_max[b] {
                    return Err(ScheduleError::Invalid(format!(
                        "fused worker {w} exceeds the level bound on buffer `{}` \
                         ({} > {})",
                        graph.buffers[b].name, level[b], self.local_level_max[b]
                    )));
                }
                Ok(())
            };
            for item in items {
                match item {
                    WorkItem::Step(s) => {
                        counted[s.unit as usize] += s.times as u64;
                        let a = &access[s.unit as usize];
                        for &(b, c) in &a.reads {
                            if confined[b] == Some(w) {
                                read(&mut level, b, s.times as u64 * c as u64)?;
                            }
                        }
                        for &(b, c) in &a.writes {
                            if confined[b] == Some(w) && self.consumer_unit[b].is_some() {
                                write(&mut level, b, s.times as u64 * c as u64)?;
                            }
                        }
                    }
                    WorkItem::Fused(run) => {
                        if run.stages.len() < 2 || run.links.len() + 1 != run.stages.len() {
                            return Err(ScheduleError::Invalid(format!(
                                "fused worker {w} has a malformed run ({} stages, {} links)",
                                run.stages.len(),
                                run.links.len()
                            )));
                        }
                        for s in &run.stages {
                            counted[s.unit as usize] += s.times as u64;
                            let a = &access[s.unit as usize];
                            for &(b, _) in a.reads.iter().chain(&a.writes) {
                                if confined[b] != Some(w) {
                                    return Err(ScheduleError::Invalid(format!(
                                        "fused run touches buffer `{}` not confined to \
                                         worker {w}",
                                        graph.buffers[b].name
                                    )));
                                }
                            }
                        }
                        for (i, &link) in run.links.iter().enumerate() {
                            let (p, c) = (run.stages[i], run.stages[i + 1]);
                            let pa = &access[p.unit as usize];
                            let ca = &access[c.unit as usize];
                            if pa.writes.len() != 1
                                || pa.writes[0].0 != link
                                || ca.reads.len() != 1
                                || ca.reads[0].0 != link
                            {
                                return Err(ScheduleError::Invalid(format!(
                                    "fused link `{}` is not a single-writer/single-reader \
                                     edge of its stages",
                                    graph.buffers[link].name
                                )));
                            }
                            let produced = p.times as u64 * port(&pa.writes, link);
                            let consumed = c.times as u64 * port(&ca.reads, link);
                            if produced != consumed || produced == 0 {
                                return Err(ScheduleError::Invalid(format!(
                                    "fused link `{}` is unbalanced ({produced} produced, \
                                     {consumed} consumed)",
                                    graph.buffers[link].name
                                )));
                            }
                            if level[link] != 0 {
                                return Err(ScheduleError::Invalid(format!(
                                    "fused link `{}` holds {} standing tokens at run entry",
                                    graph.buffers[link].name, level[link]
                                )));
                            }
                        }
                        let head = run.stages[0];
                        for &(b, c) in &access[head.unit as usize].reads {
                            read(&mut level, b, head.times as u64 * c as u64)?;
                        }
                        let tail = run.stages[run.stages.len() - 1];
                        for &(b, c) in &access[tail.unit as usize].writes {
                            if self.consumer_unit[b].is_some() {
                                write(&mut level, b, tail.times as u64 * c as u64)?;
                            }
                        }
                    }
                }
            }
            if counted != expected {
                return Err(ScheduleError::Invalid(format!(
                    "fused worker {w} changes a unit's firing count"
                )));
            }
            for (b, buf) in graph.buffers.iter_enumerated() {
                if confined[b] == Some(w)
                    && self.consumer_unit[b].is_some()
                    && level[b] != buf.initial_tokens as u64
                {
                    return Err(ScheduleError::Invalid(format!(
                        "fused worker {w} ends the period with buffer `{}` at level \
                         {} (started at {})",
                        buf.name, level[b], buf.initial_tokens
                    )));
                }
            }
        }
        Ok(())
    }

    /// Re-prove the admission property across every `(mode, mode')` switch
    /// seam by exact integer replay: one period under `from` followed by
    /// one period under `to`, with buffer levels carried across the seam,
    /// must never underflow a buffer, never exceed its capacity (nor, on
    /// the fused worker lists, its fused level bound), and end with every
    /// buffer back at its initial level. No-op for non-modal schedules.
    ///
    /// Under the union-advance construction the modal unit's token flow is
    /// the same in every mode — it consumes the union of all members'
    /// inputs and produces the shared write list whichever arm runs — so
    /// the per-mode access lists coincide, and that is exactly why hot
    /// switching needs no pipeline drain: the state at any prefix of
    /// period(`from`) is a state period(`to`) itself visits, so the bounds
    /// hold pointwise across a switch injected *anywhere*, including
    /// mid-period and inside fused super-steps (whose stages never span
    /// the modal unit — it is excluded from fusion). The replay is still
    /// executed for every ordered pair: it guards the construction (an
    /// arm-dependent access introduced later would fail here), not the
    /// argument.
    pub fn validate_transitions(&self, graph: &RtGraph) -> Result<(), ScheduleError> {
        let Some(modes) = self.modes.as_ref() else {
            return Ok(());
        };
        if modes.dependent.is_some() {
            return self.validate_dependent_transitions(graph);
        }
        let access = unit_access(graph, &self.units);
        let capacity = engine_capacities(graph);
        let confined =
            confined_worker(graph, &self.units, &self.producer_unit, &self.consumer_unit);
        let arms = modes.arms.len() as u32;
        for from in 0..arms {
            for to in 0..arms {
                self.replay_seam(graph, &access, &capacity, &confined, from, to)?;
            }
        }
        Ok(())
    }

    /// The mode-dependent seam proof, for every ordered `(from, to)` pair:
    ///
    /// 1. **Drain/fill replay.** `period(from) ++ transition(from, to) ++
    ///    period(to)` is replayed by exact integer accounting, levels
    ///    carried across both seams — the drain half under `from`'s access
    ///    lists, the transition program and the fill half under `to`'s. No
    ///    underflow, no capacity excess, and the composite must end at the
    ///    initial levels (mode `to`'s entry state, since every per-mode
    ///    period is anchored there). This is the proof obligation the
    ///    union-advance argument got for free from mode-independent flow.
    /// 2. **Seam latency.** The CTA chain drain → transition → fill (each
    ///    stage's work = Σ firings · response, exact) bounds the worst-case
    ///    source-to-sink latency a switch inserts; when the synthesis
    ///    carried a [`SynthesisConfig::seam_latency_bound`] the bound is
    ///    enforced as a CTA `before` constraint and a violation is
    ///    [`ScheduleError::SeamLatency`].
    ///
    /// The per-worker lists need no separate replay here: mode-dependent
    /// schedules never fuse, so each worker's list is the exact projection
    /// of the global order ([`Self::validate_dependent`] proves it per
    /// mode), and on single-producer/single-consumer graphs the concurrent
    /// replay of projections reproduces the global interleaving's bounds.
    fn validate_dependent_transitions(&self, graph: &RtGraph) -> Result<(), ScheduleError> {
        let modes = self.modes.as_ref().expect("dependent implies modal");
        let dep = modes.dependent.as_ref().expect("checked by caller");
        let capacity = engine_capacities(graph);
        let n_modes = dep.mode_count() as u32;
        let mut latency_max = Rational::ZERO;
        for from in 0..n_modes {
            for to in 0..n_modes {
                let seam = |what: &str, b: RtBufferId| {
                    ScheduleError::Invalid(format!(
                        "transition {from}->{to}: {what} buffer `{}` across the \
                         switch seam",
                        graph.buffers[b].name
                    ))
                };
                let mut level: IndexVec<RtBufferId, u64> = graph
                    .buffers
                    .iter()
                    .map(|b| b.initial_tokens as u64)
                    .collect::<Vec<_>>()
                    .into();
                let phases: [(&[Step], usize); 3] = [
                    (&dep.periods[from as usize], from as usize),
                    (dep.transition(from, to), to as usize),
                    (&dep.periods[to as usize], to as usize),
                ];
                for (steps, mode) in phases {
                    let access = mode_access(graph, &self.units, mode);
                    for step in steps {
                        let a = &access[step.unit as usize];
                        for _ in 0..step.times {
                            for &(b, c) in &a.reads {
                                level[b] = level[b]
                                    .checked_sub(c as u64)
                                    .ok_or_else(|| seam("underflows", b))?;
                            }
                            for &(b, c) in &a.writes {
                                if self.consumer_unit[b].is_none() {
                                    continue;
                                }
                                level[b] += c as u64;
                                if level[b] > capacity[b] as u64 {
                                    return Err(seam("overflows", b));
                                }
                            }
                        }
                    }
                }
                for (b, buf) in graph.buffers.iter_enumerated() {
                    if self.consumer_unit[b].is_some() && level[b] != buf.initial_tokens as u64 {
                        return Err(seam("fails to restore", b));
                    }
                }
                let latency = self.seam_latency(graph, from, to)?;
                if latency > latency_max {
                    latency_max = latency;
                }
            }
        }
        if latency_max != dep.seam_latency_max {
            return Err(ScheduleError::Invalid(format!(
                "recorded worst-case seam latency {}s diverges from the \
                 recomputed {}s",
                dep.seam_latency_max.to_f64(),
                latency_max.to_f64()
            )));
        }
        Ok(())
    }

    /// The CTA-bounded worst-case source-to-sink latency across one
    /// `(from, to)` switch seam (see [`Self::validate_dependent_transitions`]).
    fn seam_latency(&self, graph: &RtGraph, from: u32, to: u32) -> Result<Rational, ScheduleError> {
        let modes = self.modes.as_ref().expect("dependent implies modal");
        let dep = modes.dependent.as_ref().expect("checked by caller");
        let response = |unit: &ScheduleUnit, mode: usize| -> Rational {
            match &unit.kind {
                UnitKind::Node(id)
                | UnitKind::Cluster {
                    representative: id, ..
                } => graph.nodes[*id].response,
                UnitKind::Modal { members } => {
                    graph.nodes[members[mode.min(members.len() - 1)]].response
                }
                // Sources and sinks move one token with no kernel work.
                UnitKind::Source(_) | UnitKind::Sink(_) => Rational::ZERO,
            }
        };
        let period_work = |mode: usize| -> Rational {
            let mut work = Rational::ZERO;
            for (u, unit) in self.units.iter().enumerate() {
                let reps = dep.reps[mode][u];
                if reps > 0 {
                    work += Rational::from_int(reps as i128) * response(unit, mode);
                }
            }
            work
        };
        let transition_work: Rational = dep
            .transition(from, to)
            .iter()
            .map(|s| {
                Rational::from_int(s.times as i128)
                    * response(&self.units[s.unit as usize], to as usize)
            })
            .fold(Rational::ZERO, |acc, w| acc + w);
        let stages = [
            ("drain", period_work(from as usize)),
            ("transition", transition_work),
            ("fill", period_work(to as usize)),
        ];
        oil_cta::latency::check_seam_latency(&stages, dep.seam_latency_bound)
            .map(|report| report.latency)
            .map_err(|e| ScheduleError::SeamLatency {
                from,
                to,
                latency: e.latency,
                bound: e.bound,
            })
    }

    /// One `(from, to)` seam replay over the global period and every fused
    /// worker list (see [`Self::validate_transitions`]).
    fn replay_seam(
        &self,
        graph: &RtGraph,
        access: &[UnitAccess],
        capacity: &IndexVec<RtBufferId, usize>,
        confined: &IndexVec<RtBufferId, Option<usize>>,
        from: u32,
        to: u32,
    ) -> Result<(), ScheduleError> {
        let seam = |what: &str, b: RtBufferId| {
            ScheduleError::Invalid(format!(
                "transition {from}->{to}: {what} buffer `{}` across the switch seam",
                graph.buffers[b].name
            ))
        };
        let initial = |graph: &RtGraph| -> IndexVec<RtBufferId, u64> {
            graph
                .buffers
                .iter()
                .map(|b| b.initial_tokens as u64)
                .collect::<Vec<_>>()
                .into()
        };
        // Global period: period(from) ++ period(to), levels carried over
        // the seam.
        let mut level = initial(graph);
        for _half in 0..2 {
            for step in &self.period {
                let a = &access[step.unit as usize];
                for _ in 0..step.times {
                    for &(b, c) in &a.reads {
                        level[b] = level[b]
                            .checked_sub(c as u64)
                            .ok_or_else(|| seam("underflows", b))?;
                    }
                    for &(b, c) in &a.writes {
                        if self.consumer_unit[b].is_none() {
                            continue;
                        }
                        level[b] += c as u64;
                        if level[b] > capacity[b] as u64 {
                            return Err(seam("overflows", b));
                        }
                    }
                }
            }
        }
        for (b, buf) in graph.buffers.iter_enumerated() {
            if self.consumer_unit[b].is_some() && level[b] != buf.initial_tokens as u64 {
                return Err(seam("fails to restore", b));
            }
        }
        // Fused worker lists: each worker's confined-buffer accounting must
        // survive the seam too — fused runs hoist and defer firings, so a
        // worker's seam state differs from the global replay's.
        for (w, items) in self.fused_workers.iter().enumerate() {
            let mut level = initial(graph);
            for _half in 0..2 {
                for item in items {
                    match item {
                        WorkItem::Step(s) => {
                            let a = &access[s.unit as usize];
                            for &(b, c) in &a.reads {
                                if confined[b] == Some(w) {
                                    level[b] = level[b]
                                        .checked_sub(s.times as u64 * c as u64)
                                        .ok_or_else(|| seam("fused replay underflows", b))?;
                                }
                            }
                            for &(b, c) in &a.writes {
                                if confined[b] == Some(w) && self.consumer_unit[b].is_some() {
                                    level[b] += s.times as u64 * c as u64;
                                    if level[b] > self.local_level_max[b] {
                                        return Err(seam("fused replay overflows", b));
                                    }
                                }
                            }
                        }
                        WorkItem::Fused(run) => {
                            // Run buffers are all worker-confined
                            // (validate_fused proved it); only the head's
                            // reads and the tail's writes touch rings.
                            let head = run.stages[0];
                            for &(b, c) in &access[head.unit as usize].reads {
                                level[b] = level[b]
                                    .checked_sub(head.times as u64 * c as u64)
                                    .ok_or_else(|| seam("fused replay underflows", b))?;
                            }
                            let tail = run.stages[run.stages.len() - 1];
                            for &(b, c) in &access[tail.unit as usize].writes {
                                if self.consumer_unit[b].is_some() {
                                    level[b] += tail.times as u64 * c as u64;
                                    if level[b] > self.local_level_max[b] {
                                        return Err(seam("fused replay overflows", b));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            for (b, buf) in graph.buffers.iter_enumerated() {
                if confined[b] == Some(w)
                    && self.consumer_unit[b].is_some()
                    && level[b] != buf.initial_tokens as u64
                {
                    return Err(seam("fails to restore", b));
                }
            }
        }
        Ok(())
    }
}

/// The aggregated per-buffer access lists of one unit (duplicate ports
/// summed — a unit reading one buffer through two ports consumes the sum
/// per firing).
struct UnitAccess {
    reads: Vec<(RtBufferId, usize)>,
    writes: Vec<(RtBufferId, usize)>,
}

fn aggregate(ports: &[(RtBufferId, usize)]) -> Vec<(RtBufferId, usize)> {
    let mut sums: BTreeMap<RtBufferId, usize> = BTreeMap::new();
    for &(b, c) in ports {
        *sums.entry(b).or_default() += c;
    }
    sums.into_iter().collect()
}

/// The union of several aggregated port lists: one entry per buffer at the
/// *maximum* per-firing count any list carries. For identical lists this
/// is the list itself; for pairwise-disjoint lists it is their sorted
/// concatenation.
fn union_ports(lists: &[Vec<(RtBufferId, usize)>]) -> Vec<(RtBufferId, usize)> {
    let mut max: BTreeMap<RtBufferId, usize> = BTreeMap::new();
    for list in lists {
        for &(b, c) in list {
            let slot = max.entry(b).or_default();
            *slot = (*slot).max(c);
        }
    }
    max.into_iter().collect()
}

/// [`unit_access`] specialised to one mode of a mode-dependent schedule:
/// the modal unit carries the selected member's aggregated access (that is
/// the token flow of a mode-`mode` firing); every other unit is
/// mode-independent.
fn mode_access(graph: &RtGraph, units: &[ScheduleUnit], mode: usize) -> Vec<UnitAccess> {
    let mut access = unit_access(graph, units);
    for (u, unit) in units.iter().enumerate() {
        if let UnitKind::Modal { members } = &unit.kind {
            let member = members[mode.min(members.len() - 1)];
            let (reads, writes) = modal_member_access(graph, member);
            access[u] = UnitAccess { reads, writes };
        }
    }
    access
}

fn unit_access(graph: &RtGraph, units: &[ScheduleUnit]) -> Vec<UnitAccess> {
    units
        .iter()
        .map(|u| match &u.kind {
            UnitKind::Node(id)
            | UnitKind::Cluster {
                representative: id, ..
            } => {
                let n = &graph.nodes[*id];
                UnitAccess {
                    reads: aggregate(&n.reads),
                    writes: aggregate(&n.writes),
                }
            }
            UnitKind::Modal { members } => {
                // The *support* access: the union over members, one entry
                // per buffer at the worst per-firing count. Under
                // union-advance this is exactly the old access (reads are
                // pairwise disjoint, writes are shared); for mode-dependent
                // clusters it is the superset the buffer-endpoint maps and
                // connectivity are built over — per-mode replays use
                // [`mode_access`] instead.
                let reads: Vec<_> = members
                    .iter()
                    .map(|&m| aggregate(&graph.nodes[m].reads))
                    .collect();
                let writes: Vec<_> = members
                    .iter()
                    .map(|&m| aggregate(&graph.nodes[m].writes))
                    .collect();
                UnitAccess {
                    reads: union_ports(&reads),
                    writes: union_ports(&writes),
                }
            }
            UnitKind::Source(id) => UnitAccess {
                reads: Vec::new(),
                writes: graph.sources[*id].outputs.iter().map(|&b| (b, 1)).collect(),
            },
            UnitKind::Sink(id) => UnitAccess {
                reads: vec![(graph.sinks[*id].input, 1)],
                writes: Vec::new(),
            },
        })
        .collect()
}

/// The capacities both runtime engines enforce (declared CTA-sized
/// capacity, floored by the initial tokens and one slot).
fn engine_capacities(graph: &RtGraph) -> IndexVec<RtBufferId, usize> {
    graph
        .buffers
        .iter()
        .map(|b| b.capacity.max(b.initial_tokens).max(1))
        .collect::<Vec<_>>()
        .into()
}

/// The modal-unit view of the single non-uniform cluster of a graph, when
/// per-mode synthesis admits it (see [`modal_admission`]). Shared by the
/// synthesis, the runtime engines' scripted setup and the collapsed-twin
/// construction so all of them agree on member order and access lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModalClusterInfo {
    /// Index into [`RtPlan::clusters`].
    pub cluster: u32,
    /// Members ascending by node id; schedule arm `k` fires `members[k]`.
    pub members: Vec<RtNodeId>,
    /// Per member (same order): its aggregated read list.
    pub member_reads: Vec<Vec<(RtBufferId, usize)>>,
    /// Per member (same order): its aggregated write list. Under
    /// union-advance every entry equals [`Self::writes`]; mode-dependent
    /// clusters diverge here.
    pub member_writes: Vec<Vec<(RtBufferId, usize)>>,
    /// Member 0's aggregated write list — the write list *every* member
    /// shares when `mode_dependent` is false (the union-advance paths key
    /// off this field; mode-dependent consumers must use
    /// [`Self::member_writes`]).
    pub writes: Vec<(RtBufferId, usize)>,
    /// False: the union-advance shape (shared writes, pairwise-disjoint
    /// reads) — one schedule serves every mode, hot switching. True: the
    /// arms diverge in write lists or overlap in reads, but each mode is
    /// individually consistent — synthesis produces one schedule per mode
    /// and the drain/fill transition protocol between them.
    pub mode_dependent: bool,
}

/// Decide whether the graph's non-uniform clusters are modal-admissible.
///
/// Returns `Ok(None)` when every cluster is uniform (nothing modal), and
/// `Ok(Some(info))` when exactly one cluster is non-uniform and its
/// members (a) share one aggregated write list and (b) read pairwise
/// disjoint buffer sets, also disjoint from the write set. That shape is
/// what makes the **union-advance** modal unit sound: every firing
/// consumes the union of all members' inputs — the active arm's slice
/// feeds its kernel; the inactive members' tokens are consumed and
/// discarded, since they are mode-gated traffic that would otherwise
/// accumulate without bound — and produces the shared write list, so
/// token flow is mode-independent and one repetition vector, period and
/// partition serve every mode.
///
/// Arms that diverge in write counts or overlap in reads break the
/// union-advance argument but are still individually consistent per mode:
/// the returned info then carries `mode_dependent: true` and synthesis
/// produces one schedule per mode plus the drain/fill transition protocol
/// (see [`ModeDependent`]). What remains inadmissible — a second
/// non-uniform cluster, an arm with no writes, or an arm reading a buffer
/// any arm writes — is [`ScheduleError::NonUniformCluster`] and the caller
/// falls back to the self-timed engine.
pub fn modal_admission(
    graph: &RtGraph,
    plan: &RtPlan,
) -> Result<Option<ModalClusterInfo>, ScheduleError> {
    let reject = |c: usize| ScheduleError::NonUniformCluster {
        cluster: c as u32,
        members: plan.clusters[c]
            .iter()
            .map(|&m| graph.nodes[m].name.clone())
            .collect(),
    };
    let mut modal: Option<usize> = None;
    for (c, uniform) in plan.cluster_uniform.iter().enumerate() {
        if *uniform {
            continue;
        }
        if modal.is_some() {
            // Per-mode synthesis carries one mode dimension; a second
            // non-uniform cluster would need a mode product.
            return Err(reject(c));
        }
        modal = Some(c);
    }
    let Some(c) = modal else {
        return Ok(None);
    };
    let members = plan.clusters[c].clone();
    let member_reads: Vec<Vec<(RtBufferId, usize)>> = members
        .iter()
        .map(|&m| aggregate(&graph.nodes[m].reads))
        .collect();
    let member_writes: Vec<Vec<(RtBufferId, usize)>> = members
        .iter()
        .map(|&m| aggregate(&graph.nodes[m].writes))
        .collect();
    let writes = member_writes[0].clone();
    // Every arm must produce something (an arm with no writes has no
    // periodic schedule in any form), and no arm may read a buffer *any*
    // arm writes: the only producer such a buffer could have is the modal
    // unit itself, so the reading mode would either self-loop or starve —
    // neither admits a periodic per-mode schedule.
    if member_writes.iter().any(Vec::is_empty) {
        return Err(reject(c));
    }
    for reads in &member_reads {
        for &(b, _) in reads {
            if member_writes
                .iter()
                .any(|w| w.iter().any(|&(wb, _)| wb == b))
            {
                return Err(reject(c));
            }
        }
    }
    // Union-advance applies when the arms share one write list and read
    // pairwise-disjoint buffers; any other (write-divergent or
    // read-overlapping) shape is individually consistent per mode and
    // becomes a mode-dependent cluster.
    let shared_writes = member_writes.iter().all(|w| *w == writes);
    let disjoint_reads = member_reads.iter().enumerate().all(|(k, reads)| {
        reads.iter().all(|&(b, _)| {
            member_reads[..k]
                .iter()
                .all(|prev| !prev.iter().any(|&(pb, _)| pb == b))
        })
    });
    Ok(Some(ModalClusterInfo {
        cluster: c as u32,
        members,
        member_reads,
        member_writes,
        writes,
        mode_dependent: !(shared_writes && disjoint_reads),
    }))
}

/// Aggregated per-buffer port accesses in canonical ascending-buffer order:
/// `(buffer, total count)` pairs.
pub type PortAccessList = Vec<(RtBufferId, usize)>;

/// The aggregated `(reads, writes)` of one node, in the canonical
/// ascending-buffer order synthesis uses. The runtime engines build their
/// modal dispatch tables through this, so the per-firing value layout of a
/// modal firing (which slice of the popped union feeds the active kernel)
/// is identical everywhere.
pub fn modal_member_access(graph: &RtGraph, node: RtNodeId) -> (PortAccessList, PortAccessList) {
    let n = &graph.nodes[node];
    (aggregate(&n.reads), aggregate(&n.writes))
}

/// The uniform twin of a modal graph: the modal cluster's members replaced
/// by one node carrying the union-advance access (union of member reads,
/// shared writes). Buffers, sources and sinks are untouched. Because the
/// modal unit's token flow is mode-independent, the collapsed twin has the
/// modal graph's exact per-buffer token flow in *every* mode — which lets
/// the value-free simulator/calendar trace oracle cover the modal
/// schedule (see tests/modeswitch_differential.rs).
pub fn collapse_modal(graph: &RtGraph, info: &ModalClusterInfo) -> RtGraph {
    let mut union_reads: Vec<(RtBufferId, usize)> = Vec::new();
    for reads in &info.member_reads {
        union_reads.extend(reads.iter().copied());
    }
    union_reads.sort();
    let rep = &graph.nodes[info.members[0]];
    let mut nodes: Vec<crate::rtgraph::RtNode> = Vec::new();
    for (id, n) in graph.nodes.iter_enumerated() {
        if info.members.contains(&id) {
            continue;
        }
        nodes.push(n.clone());
    }
    nodes.push(crate::rtgraph::RtNode {
        name: format!("{}__modal", rep.name),
        function: rep.function.clone(),
        response: rep.response,
        reads: union_reads,
        writes: info.writes.clone(),
    });
    RtGraph {
        buffers: graph.buffers.clone(),
        nodes: nodes.into(),
        sources: graph.sources.clone(),
        sinks: graph.sinks.clone(),
    }
}

/// Hard cap on tokens flowing through one stage of one fused run: bounds
/// the scratch window the executor allocates (8 MiB of f64 per worker).
const MAX_FUSED_STAGE_TOKENS: u64 = 1 << 20;

/// True when the fusion pass is enabled for [`synthesize`] (default on;
/// `OIL_RT_FUSION=0` disables it, `OIL_RT_FUSION=1` enables it).
///
/// Any other value is a **loud error**: a typoed override that silently
/// fell back to the default would make a fusion-off CI leg silently test
/// the fusion-on path (the same discipline `OIL_RT_CONFORMANCE` and
/// `OIL_RT_THREADS` follow).
pub fn fusion_enabled() -> bool {
    match std::env::var("OIL_RT_FUSION") {
        Err(_) => true,
        Ok(raw) => parse_fusion(&raw),
    }
}

/// Parse an `OIL_RT_FUSION` override. Split from [`fusion_enabled`] so the
/// rejection path is testable without mutating the process environment
/// (tests run concurrently; `set_var` would race).
pub fn parse_fusion(raw: &str) -> bool {
    match raw.trim() {
        // Set-but-empty behaves as unset (shells produce this easily).
        "" => true,
        "0" => false,
        "1" => true,
        other => panic!(
            "OIL_RT_FUSION must be 0 or 1 (or unset), got `{other}` — \
             refusing to guess which fusion mode you meant"
        ),
    }
}

/// Per buffer: the worker every existing endpoint lives on, when they all
/// agree (`None` for cross-worker buffers and endpoint-less buffers).
fn confined_worker(
    graph: &RtGraph,
    units: &[ScheduleUnit],
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
) -> IndexVec<RtBufferId, Option<usize>> {
    graph
        .buffers
        .indices()
        .map(|b| match (producer_unit[b], consumer_unit[b]) {
            (Some(p), Some(c)) => {
                let (pw, cw) = (units[p as usize].worker, units[c as usize].worker);
                (pw == cw).then_some(pw)
            }
            (Some(p), None) => Some(units[p as usize].worker),
            (None, Some(c)) => Some(units[c as usize].worker),
            (None, None) => None,
        })
        .collect::<Vec<_>>()
        .into()
}

/// The fusion pass: rewrite each worker's firing list, coalescing each
/// maximal producer→consumer chain's *entire period* of firings into one
/// [`FusedRun`] super-step.
///
/// A link edge `u → v` is fusable when `u`'s only write is the link, `v`'s
/// only read is the link, both units touch only worker-confined buffers,
/// and the link holds no initial tokens; chains are the maximal paths of
/// that (functional) edge relation. Each chain's run fires every stage its
/// full per-period repetition count, so the CTA-sized burst interleaving
/// the admission loop produced (often 3–5 firings per step) collapses to
/// one pass per stage. The run is *placed* at the earliest point of the
/// remaining plain-step list where the head's whole-period inputs have
/// accumulated — deferring the chain units' earlier firings and hoisting
/// their later ones. Per-unit firing order and per-buffer push/pop value
/// order are unchanged (only cross-buffer interleaving moves, and only on
/// worker-confined buffers no other worker can observe), so every value
/// stream is bit-identical; the reorder is visible solely through token
/// levels, which [`StaticSchedule::local_level_max`] absorbs and the
/// per-worker replay below re-proves. A chain whose deferral would starve
/// a plain step (or another chain) is dropped back to plain steps and the
/// placement replay restarts without it.
fn fuse_workers(
    graph: &RtGraph,
    access: &[UnitAccess],
    units: &[ScheduleUnit],
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    worker_lists: &[Vec<Step>],
) -> (Vec<Vec<WorkItem>>, FusionStats, IndexVec<RtBufferId, u64>) {
    let confined = confined_worker(graph, units, producer_unit, consumer_unit);
    // A unit is fusable when every buffer it touches is confined to its own
    // worker — hoisting its firings then reorders nothing another worker
    // can observe (cross-ring push/pop order is untouched).
    let fusable: Vec<bool> = units
        .iter()
        .enumerate()
        .map(|(u, unit)| {
            // Modal units never fuse: their per-firing kernel dispatch is
            // script-dependent, which a block-fired fused stage cannot
            // express — and keeping them out of runs means a mode switch
            // can never land inside a super-step.
            if matches!(unit.kind, UnitKind::Modal { .. }) {
                return false;
            }
            let a = &access[u];
            a.reads
                .iter()
                .chain(&a.writes)
                .all(|&(b, _)| confined[b] == Some(unit.worker))
        })
        .collect();
    let mut level_max: IndexVec<RtBufferId, u64> = engine_capacities(graph)
        .iter()
        .map(|&c| c as u64)
        .collect::<Vec<_>>()
        .into();
    let mut stats = FusionStats::default();
    let mut lists: Vec<Vec<WorkItem>> = Vec::with_capacity(worker_lists.len());
    for steps in worker_lists {
        match fuse_worker(
            graph,
            access,
            units,
            producer_unit,
            consumer_unit,
            &confined,
            &fusable,
            steps,
            &mut level_max,
            &mut stats,
        ) {
            Some(items) => lists.push(items),
            // Defensive: an invariant breach falls back to the unfused
            // projection for this worker (validate() re-proves either way).
            None => lists.push(steps.iter().map(|&s| WorkItem::Step(s)).collect()),
        }
    }
    // Batchable runs: a run that is its component's entire period may be
    // executed several iterations back to back (its links are scratch).
    let mut component_firings = vec![0u64; units.len().max(1)];
    for steps in worker_lists {
        for s in steps {
            component_firings[units[s.unit as usize].component as usize] += s.times as u64;
        }
    }
    for items in &mut lists {
        for item in items.iter_mut() {
            if let WorkItem::Fused(run) = item {
                let comp = units[run.stages[0].unit as usize].component as usize;
                run.batch = run.firings() == component_firings[comp];
            }
        }
    }
    // Fully-elided rings: link buffers no remaining plain step or run
    // boundary (head read / tail write) ever touches.
    let mut is_link: IndexVec<RtBufferId, bool> = IndexVec::from_elem(false, graph.buffers.len());
    let mut ring_touched: IndexVec<RtBufferId, bool> =
        IndexVec::from_elem(false, graph.buffers.len());
    for items in &lists {
        for item in items {
            match item {
                WorkItem::Step(s) => {
                    let a = &access[s.unit as usize];
                    for &(b, _) in a.reads.iter().chain(&a.writes) {
                        ring_touched[b] = true;
                    }
                }
                WorkItem::Fused(run) => {
                    for &b in &run.links {
                        is_link[b] = true;
                    }
                    let head = &access[run.stages[0].unit as usize];
                    for &(b, _) in &head.reads {
                        ring_touched[b] = true;
                    }
                    let tail = &access[run.stages[run.stages.len() - 1].unit as usize];
                    for &(b, _) in &tail.writes {
                        ring_touched[b] = true;
                    }
                }
            }
        }
    }
    stats.rings_elided = graph
        .buffers
        .indices()
        .filter(|&b| is_link[b] && !ring_touched[b])
        .count() as u32;
    (lists, stats, level_max)
}

/// Fuse one worker's projection (see [`fuse_workers`] for the legality
/// argument). Returns `None` on an internal invariant breach (the caller
/// falls back to the unfused projection).
#[allow(clippy::too_many_arguments)]
fn fuse_worker(
    graph: &RtGraph,
    access: &[UnitAccess],
    units: &[ScheduleUnit],
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    confined: &IndexVec<RtBufferId, Option<usize>>,
    fusable: &[bool],
    steps: &[Step],
    level_max: &mut IndexVec<RtBufferId, u64>,
    stats: &mut FusionStats,
) -> Option<Vec<WorkItem>> {
    let worker = steps
        .first()
        .map(|s| units[s.unit as usize].worker)
        .unwrap_or(0);
    // Whole-period firing count of each unit on this worker.
    let mut total = vec![0u64; units.len()];
    for s in steps {
        total[s.unit as usize] += s.times as u64;
    }
    // The chain successor relation: `u → v` when u's single write feeds v's
    // single read over an initially-empty worker-confined link. At most one
    // edge leaves u (single write) and at most one enters v (single read +
    // single producer per buffer), so the relation is functional both ways
    // and chains are disjoint maximal paths.
    let succ = |u: usize| -> Option<(usize, RtBufferId)> {
        if !fusable[u] || total[u] == 0 || total[u] > u32::MAX as u64 {
            return None;
        }
        let &[(link, prod)] = access[u].writes.as_slice() else {
            return None;
        };
        if prod == 0 || graph.buffers[link].initial_tokens != 0 {
            return None;
        }
        let v = consumer_unit[link]? as usize;
        if v == u || !fusable[v] || total[v] == 0 || total[v] > u32::MAX as u64 {
            return None;
        }
        let &[(rb, cons)] = access[v].reads.as_slice() else {
            return None;
        };
        let burst = total[u].checked_mul(prod as u64)?;
        if rb != link
            || cons == 0
            || burst != total[v].checked_mul(cons as u64)?
            || burst > MAX_FUSED_STAGE_TOKENS
        {
            return None;
        }
        Some((v, link))
    };
    let successors: Vec<Option<(usize, RtBufferId)>> = (0..units.len()).map(succ).collect();
    let mut has_pred = vec![false; units.len()];
    for s in successors.iter().flatten() {
        has_pred[s.0] = true;
    }
    // Maximal paths: start from every head (an edge out, none in). Cycle
    // units all have a predecessor, so no walk enters a cycle except via a
    // tail into it — the membership check below cuts that walk short.
    let mut chain_of = vec![usize::MAX; units.len()];
    let mut chains: Vec<(Vec<Step>, Vec<RtBufferId>)> = Vec::new();
    for h in 0..units.len() {
        if has_pred[h] || successors[h].is_none() {
            continue;
        }
        let mut stages = vec![Step {
            unit: h as u32,
            times: total[h] as u32,
        }];
        let mut links: Vec<RtBufferId> = Vec::new();
        let mut cur = h;
        while let Some((v, link)) = successors[cur] {
            if chain_of[v] != usize::MAX || stages.iter().any(|s| s.unit as usize == v) {
                break;
            }
            stages.push(Step {
                unit: v as u32,
                times: total[v] as u32,
            });
            links.push(link);
            cur = v;
        }
        if stages.len() < 2 {
            continue;
        }
        let ci = chains.len();
        for s in &stages {
            chain_of[s.unit as usize] = ci;
        }
        chains.push((stages, links));
    }
    // Placement replay: walk the plain projection with chain units removed,
    // emitting each chain's run at the earliest point its head's
    // whole-period inputs have accumulated. A chain whose deferral starves
    // someone is dropped back to plain steps and the replay restarts.
    let mut active = vec![true; chains.len()];
    let initial_level = |graph: &RtGraph| -> IndexVec<RtBufferId, u64> {
        graph
            .buffers
            .iter()
            .map(|b| b.initial_tokens as u64)
            .collect::<Vec<_>>()
            .into()
    };
    'placement: loop {
        let mut level = initial_level(graph);
        let mut lmax = level_max.clone();
        let bump = |b: RtBufferId, level: u64, lmax: &mut IndexVec<RtBufferId, u64>| {
            if level > lmax[b] {
                lmax[b] = level;
            }
        };
        let mut emitted = vec![false; chains.len()];
        let mut out: Vec<WorkItem> = Vec::new();
        // Emit every ready chain (to a fixpoint: one chain's tail may feed
        // another chain's head).
        let try_emit = |level: &mut IndexVec<RtBufferId, u64>,
                        lmax: &mut IndexVec<RtBufferId, u64>,
                        emitted: &mut [bool],
                        out: &mut Vec<WorkItem>| {
            loop {
                let mut progressed = false;
                for (ci, (stages, links)) in chains.iter().enumerate() {
                    if !active[ci] || emitted[ci] {
                        continue;
                    }
                    let head = stages[0];
                    let ha = &access[head.unit as usize];
                    if ha
                        .reads
                        .iter()
                        .any(|&(b, c)| level[b] < head.times as u64 * c as u64)
                    {
                        continue;
                    }
                    for &(b, c) in &ha.reads {
                        level[b] -= head.times as u64 * c as u64;
                    }
                    let tail = stages[stages.len() - 1];
                    for &(b, c) in &access[tail.unit as usize].writes {
                        if consumer_unit[b].is_some() {
                            level[b] += tail.times as u64 * c as u64;
                            bump(b, level[b], lmax);
                        }
                    }
                    out.push(WorkItem::Fused(FusedRun {
                        stages: stages.clone(),
                        links: links.clone(),
                        batch: false,
                    }));
                    emitted[ci] = true;
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
        };
        // Blame: the unemitted active chain producing into `b`, if any.
        let starver = |b: RtBufferId, emitted: &[bool]| -> Option<usize> {
            let p = producer_unit[b]? as usize;
            let ci = chain_of[p];
            (ci != usize::MAX && active[ci] && !emitted[ci]).then_some(ci)
        };
        try_emit(&mut level, &mut lmax, &mut emitted, &mut out);
        for step in steps {
            let u = step.unit as usize;
            if chain_of[u] != usize::MAX && active[chain_of[u]] {
                continue; // folded into its chain's run
            }
            let t = step.times as u64;
            let a = &access[u];
            for &(b, c) in &a.reads {
                if confined[b] != Some(worker) {
                    continue;
                }
                if level[b] < t * c as u64 {
                    // Starved by a deferred chain: drop it and restart.
                    let ci = starver(b, &emitted)?;
                    active[ci] = false;
                    continue 'placement;
                }
                level[b] -= t * c as u64;
            }
            for &(b, c) in &a.writes {
                if confined[b] == Some(worker) && consumer_unit[b].is_some() {
                    level[b] += t * c as u64;
                    bump(b, level[b], &mut lmax);
                }
            }
            // Merge with a directly-adjacent plain step of the same unit
            // (replay-neutral: no op separates them in the emitted list).
            match out.last_mut() {
                Some(WorkItem::Step(prev)) if prev.unit == step.unit => {
                    match prev.times.checked_add(step.times) {
                        Some(times) => prev.times = times,
                        None => out.push(WorkItem::Step(*step)),
                    }
                }
                _ => out.push(WorkItem::Step(*step)),
            }
            try_emit(&mut level, &mut lmax, &mut emitted, &mut out);
        }
        if let Some(ci) = (0..chains.len()).find(|&ci| active[ci] && !emitted[ci]) {
            // Head inputs never accumulated (initial-token stock below one
            // period's need): this chain cannot be placed — drop it.
            active[ci] = false;
            continue 'placement;
        }
        for (ci, (stages, _)) in chains.iter().enumerate() {
            if active[ci] {
                stats.runs_fused += 1;
                stats.fused_chain_len_max = stats.fused_chain_len_max.max(stages.len() as u32);
            }
        }
        *level_max = lmax;
        return Some(out);
    }
}

/// Synthesise a periodic static-order schedule for `workers` workers.
///
/// `workers` is clamped to `[1, #units]`. The plan must have been computed
/// for `graph` (as for [`crate::rtgraph::plan`] consumers). `config`
/// carries the caller-resolved knobs — build it once per process with
/// [`SynthesisConfig::from_env`] (or use [`SynthesisConfig::default`]);
/// synthesis itself never reads the environment.
pub fn synthesize(
    graph: &RtGraph,
    plan: &RtPlan,
    workers: usize,
    config: &SynthesisConfig,
) -> Result<StaticSchedule, ScheduleError> {
    synthesize_impl(graph, plan, workers, config)
}

/// [`synthesize`] with the fusion pass explicitly on or off (and no seam
/// latency bound, declared costs).
pub fn synthesize_with(
    graph: &RtGraph,
    plan: &RtPlan,
    workers: usize,
    fuse: bool,
) -> Result<StaticSchedule, ScheduleError> {
    synthesize_impl(
        graph,
        plan,
        workers,
        &SynthesisConfig {
            fusion: fuse,
            ..SynthesisConfig::default()
        },
    )
}

fn synthesize_impl(
    graph: &RtGraph,
    plan: &RtPlan,
    workers: usize,
    config: &SynthesisConfig,
) -> Result<StaticSchedule, ScheduleError> {
    let fuse = config.fusion;
    // --- 1. Units: uncontested nodes, collapsed uniform clusters, one
    // modal unit for the (single, modal-admissible) non-uniform cluster,
    // sources, sinks — in the self-timed engine's unit order (clusters at
    // their first member). Non-uniform clusters outside both admissible
    // shapes reject here; mode-dependent clusters divert to the per-mode
    // synthesis.
    let mut timer = PhaseTimer::start();
    let modal = modal_admission(graph, plan)?;
    if let Some(info) = modal.as_ref().filter(|m| m.mode_dependent) {
        return synthesize_mode_dependent(graph, plan, workers, info, config);
    }
    timer.lap("modal_admission");
    let mut units = build_units(graph, plan, modal.as_ref());
    let access = unit_access(graph, &units);

    // --- Buffer endpoints over units. Collapsing uniform clusters makes
    // every read buffer single-producer/single-consumer (the contested
    // endpoints all belonged to one cluster).
    let (producer_unit, consumer_unit) = buffer_endpoints(graph, &access);

    // --- 2. Repetition vector of the SDF view over units.
    let active = vec![true; units.len()];
    let reps = repetition_vector(
        graph,
        &access,
        &producer_unit,
        &consumer_unit,
        &active,
        units.len(),
    )?;
    for (u, unit) in units.iter_mut().enumerate() {
        unit.repetitions = reps[u];
    }
    let required: u64 = units.iter().map(|u| u.repetitions).sum();
    if required > MAX_PERIOD_FIRINGS {
        return Err(ScheduleError::PeriodTooLong { firings: required });
    }
    timer.lap("repetition_vector");

    // --- Weakly-connected components over shared buffers.
    let components = assign_components(&mut units, graph, &producer_unit, &consumer_unit);

    // --- 3. Greedy bursting admission: round-robin over units, firing each
    // enabled unit as long as tokens and capacities allow. Persistence of
    // data-driven firing on SPSC graphs guarantees the greedy order
    // completes whenever any order does.
    let capacity = engine_capacities(graph);
    let reps: Vec<u64> = units.iter().map(|u| u.repetitions).collect();
    let period = greedy_period(graph, &access, &consumer_unit, &capacity, &reps)?;
    timer.lap("firing_order");

    // --- 4. Partition units over workers by component, balanced by kernel
    // cost estimates.
    let workers = workers.clamp(1, units.len().max(1));
    let cost: Vec<f64> = match config.cost_model.as_ref() {
        // Declared costs: the historical expression, byte for byte, so the
        // golden schedule corpus digests are untouched when no model is
        // supplied.
        None => units
            .iter()
            .map(|u| {
                let per_firing = match &u.kind {
                    UnitKind::Node(id)
                    | UnitKind::Cluster {
                        representative: id, ..
                    } => graph.nodes[*id].response.to_f64().max(1e-9),
                    // A modal firing runs whichever arm the script selects;
                    // budget for the worst case.
                    UnitKind::Modal { members } => members
                        .iter()
                        .map(|&m| graph.nodes[m].response.to_f64())
                        .fold(1e-9, f64::max),
                    // Sources and sinks move one token with no kernel work.
                    UnitKind::Source(_) | UnitKind::Sink(_) => 1e-8,
                };
                u.repetitions as f64 * per_firing
            })
            .collect(),
        // Measured costs (ns/firing), falling back to the declared
        // response scaled to ns for uncalibrated functions — the same
        // relative weights as above for unknown kernels, so a partial
        // model degrades gracefully.
        Some(model) => units
            .iter()
            .map(|u| {
                let per_firing_ns = match &u.kind {
                    UnitKind::Node(id)
                    | UnitKind::Cluster {
                        representative: id, ..
                    } => measured_cost_ns(graph, *id, model),
                    UnitKind::Modal { members } => members
                        .iter()
                        .map(|&m| measured_cost_ns(graph, m, model))
                        .fold(1.0, f64::max),
                    UnitKind::Source(_) | UnitKind::Sink(_) => 10.0,
                };
                u.repetitions as f64 * per_firing_ns
            })
            .collect(),
    };
    partition_workers(&mut units, &cost, components, workers, &period);

    // --- Worker projections and cross-worker buffers.
    renumber_workers(&mut units, workers);
    let worker_count = units.iter().map(|u| u.worker + 1).max().unwrap_or(1);
    let worker_lists = project_period(&period, &units, worker_count);
    let cross_buffers: Vec<RtBufferId> = graph
        .buffers
        .indices()
        .filter(|&b| match (producer_unit[b], consumer_unit[b]) {
            (Some(p), Some(c)) => units[p as usize].worker != units[c as usize].worker,
            _ => false,
        })
        .collect();
    timer.lap("partition");

    let (fused_workers, fusion, local_level_max) = if fuse {
        fuse_workers(
            graph,
            &access,
            &units,
            &producer_unit,
            &consumer_unit,
            &worker_lists,
        )
    } else {
        (
            worker_lists
                .iter()
                .map(|w| w.iter().map(|&s| WorkItem::Step(s)).collect())
                .collect(),
            FusionStats::default(),
            engine_capacities(graph)
                .iter()
                .map(|&c| c as u64)
                .collect::<Vec<_>>()
                .into(),
        )
    };
    timer.lap("fusion");
    let modes = modal.as_ref().map(|m| ModalSchedule {
        unit: units
            .iter()
            .position(|u| matches!(&u.kind, UnitKind::Modal { .. }))
            .expect("modal admission implies a modal unit") as u32,
        arms: m.members.clone(),
        arm_names: m
            .members
            .iter()
            .map(|&n| graph.nodes[n].name.clone())
            .collect(),
        dependent: None,
    });
    let predicted_utilization = worker_utilization(&units, &cost, worker_count);
    let mut schedule = StaticSchedule {
        units,
        period,
        workers: worker_lists,
        components,
        producer_unit,
        consumer_unit,
        cross_buffers,
        fused_workers,
        fusion,
        local_level_max,
        modes,
        phases: Vec::new(),
        cost_model_hash: config.cost_model.as_ref().map(|m| m.fingerprint()),
        predicted_utilization,
    };
    // Admission: the schedule is returned only with its validity proven by
    // exact replay (over both the period and the fused worker lists), and
    // — for modal schedules — with every (mode, mode') switch seam
    // re-proven the same way.
    schedule.validate(graph)?;
    schedule.validate_transitions(graph)?;
    timer.lap("admission_proof");
    schedule.phases = timer.phases;
    Ok(schedule)
}

/// Step 1 of synthesis: the scheduling units of a graph, in the self-timed
/// engine's unit order (clusters at their first member, then sources, then
/// sinks). `modal` marks which cluster becomes the modal unit.
fn build_units(
    graph: &RtGraph,
    plan: &RtPlan,
    modal: Option<&ModalClusterInfo>,
) -> Vec<ScheduleUnit> {
    let mut units: Vec<ScheduleUnit> = Vec::new();
    let mut emitted = vec![false; graph.nodes.len()];
    for ni in graph.nodes.indices() {
        if emitted[ni.index()] {
            continue;
        }
        let kind = match plan.cluster_of[ni] {
            Some(cid) => {
                let members = plan.clusters[cid as usize].clone();
                for &m in &members {
                    emitted[m.index()] = true;
                }
                if modal.is_some_and(|m| m.cluster == cid) {
                    UnitKind::Modal { members }
                } else {
                    UnitKind::Cluster {
                        representative: members[0],
                        members,
                    }
                }
            }
            None => {
                emitted[ni.index()] = true;
                UnitKind::Node(ni)
            }
        };
        units.push(ScheduleUnit {
            kind,
            component: 0,
            worker: 0,
            repetitions: 0,
        });
    }
    for i in graph.sources.indices() {
        units.push(ScheduleUnit {
            kind: UnitKind::Source(i),
            component: 0,
            worker: 0,
            repetitions: 0,
        });
    }
    for i in graph.sinks.indices() {
        units.push(ScheduleUnit {
            kind: UnitKind::Sink(i),
            component: 0,
            worker: 0,
            repetitions: 0,
        });
    }
    units
}

/// The buffer-endpoint maps over units (single producer and single
/// consumer per buffer, by construction).
fn buffer_endpoints(
    graph: &RtGraph,
    access: &[UnitAccess],
) -> (
    IndexVec<RtBufferId, Option<u32>>,
    IndexVec<RtBufferId, Option<u32>>,
) {
    let n_buffers = graph.buffers.len();
    let mut producer_unit: IndexVec<RtBufferId, Option<u32>> = IndexVec::from_elem(None, n_buffers);
    let mut consumer_unit: IndexVec<RtBufferId, Option<u32>> = IndexVec::from_elem(None, n_buffers);
    for (u, a) in access.iter().enumerate() {
        for &(b, _) in &a.writes {
            debug_assert!(
                producer_unit[b].is_none(),
                "buffer `{}` has two producing units after cluster collapsing",
                graph.buffers[b].name
            );
            producer_unit[b] = Some(u as u32);
        }
        for &(b, _) in &a.reads {
            debug_assert!(
                consumer_unit[b].is_none(),
                "buffer `{}` has two consuming units after cluster collapsing",
                graph.buffers[b].name
            );
            consumer_unit[b] = Some(u as u32);
        }
    }
    (producer_unit, consumer_unit)
}

/// The repetition vector of the SDF view over the *active* units: gated
/// units (mode-dependent synthesis gates the off-mode slices of the graph)
/// get no actor and repetition 0, so the per-mode period simply omits
/// them. For the uniform path every unit is active and this is exactly the
/// old step 2.
fn repetition_vector(
    graph: &RtGraph,
    access: &[UnitAccess],
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    active: &[bool],
    n_units: usize,
) -> Result<Vec<u64>, ScheduleError> {
    let mut sdf = SdfGraph::new();
    let actors: Vec<_> = (0..n_units)
        .map(|u| active[u].then(|| sdf.add_actor(format!("u{u}"), 0.0)))
        .collect();
    for (bi, buf) in graph.buffers.iter_enumerated() {
        let (Some(p), Some(c)) = (producer_unit[bi], consumer_unit[bi]) else {
            continue; // unread or never-written: no rate constraint
        };
        let (Some(pa), Some(ca)) = (actors[p as usize], actors[c as usize]) else {
            continue; // a gated endpoint: the buffer is idle in this mode
        };
        let prod = access[p as usize]
            .writes
            .iter()
            .find(|&&(b, _)| b == bi)
            .map(|&(_, n)| n as u64)
            .unwrap_or(0);
        let cons = access[c as usize]
            .reads
            .iter()
            .find(|&&(b, _)| b == bi)
            .map(|&(_, n)| n as u64)
            .unwrap_or(0);
        if prod > 0 && cons > 0 {
            sdf.add_named_edge(&buf.name, pa, ca, prod, cons, buf.initial_tokens as u64);
        }
    }
    let q = sdf
        .repetition_vector()
        .map_err(|e| ScheduleError::NoRepetitionVector {
            reason: e.to_string(),
        })?;
    Ok((0..n_units)
        .map(|u| actors[u].map(|a| q[a]).unwrap_or(0))
        .collect())
}

/// Weakly-connected components over shared buffers (mutates
/// `units[..].component`, returns the component count).
fn assign_components(
    units: &mut [ScheduleUnit],
    graph: &RtGraph,
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
) -> u32 {
    let mut uf = oil_dataflow::unionfind::UnionFind::new(units.len());
    for bi in graph.buffers.indices() {
        if let (Some(p), Some(c)) = (producer_unit[bi], consumer_unit[bi]) {
            uf.union(p as usize, c as usize);
        }
    }
    let mut component_of_root: BTreeMap<usize, u32> = BTreeMap::new();
    for (u, unit) in units.iter_mut().enumerate() {
        let root = uf.find(u);
        let next = component_of_root.len() as u32;
        unit.component = *component_of_root.entry(root).or_insert(next);
    }
    component_of_root.len() as u32
}

/// Step 3 of synthesis: the greedy bursting admission replay — fire each
/// enabled unit as often as tokens and CTA-sized capacities allow,
/// round-robin until every unit has fired its repetition count. Returns
/// the admitted global firing order (run-length encoded).
fn greedy_period(
    graph: &RtGraph,
    access: &[UnitAccess],
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    capacity: &IndexVec<RtBufferId, usize>,
    repetitions: &[u64],
) -> Result<Vec<Step>, ScheduleError> {
    let required: u64 = repetitions.iter().sum();
    let mut level: IndexVec<RtBufferId, u64> = graph
        .buffers
        .iter()
        .map(|b| b.initial_tokens as u64)
        .collect::<Vec<_>>()
        .into();
    let mut remaining: Vec<u64> = repetitions.to_vec();
    let mut admitted: u64 = 0;
    let mut period: Vec<Step> = Vec::new();
    loop {
        let mut progressed = false;
        for (u, a) in access.iter().enumerate() {
            let mut times: u64 = 0;
            while remaining[u] > 0 {
                let tokens_ok = a.reads.iter().all(|&(b, c)| level[b] >= c as u64);
                let space_ok = a.writes.iter().all(|&(b, c)| {
                    consumer_unit[b].is_none() || level[b] + c as u64 <= capacity[b] as u64
                });
                if !(tokens_ok && space_ok) {
                    break;
                }
                for &(b, c) in &a.reads {
                    level[b] -= c as u64;
                }
                for &(b, c) in &a.writes {
                    if consumer_unit[b].is_some() {
                        level[b] += c as u64;
                    }
                }
                remaining[u] -= 1;
                times += 1;
            }
            if times > 0 {
                admitted += times;
                progressed = true;
                let mut left = times;
                while left > 0 {
                    let chunk = left.min(u32::MAX as u64) as u32;
                    period.push(Step {
                        unit: u as u32,
                        times: chunk,
                    });
                    left -= chunk as u64;
                }
            }
        }
        if remaining.iter().all(|&r| r == 0) {
            break;
        }
        if !progressed {
            return Err(ScheduleError::Stuck { admitted, required });
        }
    }
    Ok(period)
}

/// A node's per-firing cost in nanoseconds under a measured cost model:
/// the calibrated ns/firing when the node's function has an entry, the
/// declared CTA response time scaled seconds→ns otherwise (so a partial
/// model keeps the same relative weights as the declared path for the
/// kernels it has not seen). Floored at 1 ns — a zero cost would let the
/// partitioner stack unboundedly many units on one worker for free.
fn measured_cost_ns(graph: &RtGraph, id: RtNodeId, model: &KernelCostModel) -> f64 {
    match model.ns_per_firing(&graph.nodes[id].function) {
        Some(ns) => ns.max(1.0),
        None => (graph.nodes[id].response.to_f64() * 1e9).max(1.0),
    }
}

/// Predicted per-worker utilization of a finished partition: each worker's
/// summed unit cost divided by the heaviest worker's (in `(0, 1]`; a
/// perfectly balanced partition is all ones). Purely observational — the
/// number the profile-guided loop improves, recorded in
/// [`StaticSchedule::predicted_utilization`].
fn worker_utilization(units: &[ScheduleUnit], cost: &[f64], worker_count: usize) -> Vec<f64> {
    let mut load = vec![0.0f64; worker_count.max(1)];
    for (u, unit) in units.iter().enumerate() {
        load[unit.worker] += cost[u];
    }
    let peak = load.iter().copied().fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return vec![1.0; load.len()];
    }
    load.iter().map(|&l| l / peak).collect()
}

/// Step 4 of synthesis: assign units to workers by weakly-connected
/// component, balanced by the given per-unit cost estimates (mutates
/// `units[..].worker`; `period` supplies the dataflow order for contiguous
/// pipeline cuts).
fn partition_workers(
    units: &mut [ScheduleUnit],
    cost: &[f64],
    components: u32,
    workers: usize,
    period: &[Step],
) {
    let mut component_units: Vec<Vec<usize>> = vec![Vec::new(); components as usize];
    for (u, unit) in units.iter().enumerate() {
        component_units[unit.component as usize].push(u);
    }
    let component_cost: Vec<f64> = component_units
        .iter()
        .map(|us| us.iter().map(|&u| cost[u]).sum())
        .collect();
    if components as usize >= workers {
        // Whole components, heaviest first onto the least-loaded worker:
        // zero cross-worker buffers.
        let mut order: Vec<usize> = (0..components as usize).collect();
        order.sort_by(|&a, &b| {
            component_cost[b]
                .total_cmp(&component_cost[a])
                .then(a.cmp(&b))
        });
        let mut load = vec![0.0f64; workers];
        for c in order {
            let w = (0..workers)
                .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
                .unwrap_or(0);
            for &u in &component_units[c] {
                units[u].worker = w;
            }
            load[w] += component_cost[c];
        }
    } else {
        // Fewer components than workers: apportion workers to components by
        // cost (every component gets at least one), then cut each component
        // into contiguous segments of its dataflow order — the order of
        // first firing in the admitted period, so a pipeline splits at
        // stage boundaries and each cut crosses one buffer.
        let total: f64 = component_cost.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        let mut share: Vec<usize> = component_cost
            .iter()
            .map(|&c| ((c / total) * workers as f64).floor() as usize)
            .map(|s| s.max(1))
            .collect();
        // Trim or grow to exactly `workers`, largest-cost components first.
        let mut order: Vec<usize> = (0..components as usize).collect();
        order.sort_by(|&a, &b| {
            component_cost[b]
                .total_cmp(&component_cost[a])
                .then(a.cmp(&b))
        });
        let mut assigned: usize = share.iter().sum();
        let mut i = 0;
        while assigned < workers {
            share[order[i % order.len()]] += 1;
            assigned += 1;
            i += 1;
        }
        i = 0;
        while assigned > workers {
            let c = order[order.len() - 1 - (i % order.len())];
            if share[c] > 1 {
                share[c] -= 1;
                assigned -= 1;
            }
            i += 1;
        }
        // First-firing order within each component.
        let mut first_pos = vec![usize::MAX; units.len()];
        for (pos, step) in period.iter().enumerate() {
            let u = step.unit as usize;
            if first_pos[u] == usize::MAX {
                first_pos[u] = pos;
            }
        }
        let mut next_worker = 0usize;
        for (c, us) in component_units.iter().enumerate() {
            let segments = share[c];
            let mut ordered = us.clone();
            ordered.sort_by_key(|&u| (first_pos[u], u));
            let comp_total: f64 = component_cost[c].max(f64::MIN_POSITIVE);
            let mut acc = 0.0f64;
            let mut segment = 0usize;
            for &u in &ordered {
                // Cut when the accumulated cost passes the next segment
                // boundary (but never beyond the last segment).
                if segment + 1 < segments
                    && acc >= comp_total * (segment + 1) as f64 / segments as f64
                {
                    segment += 1;
                }
                units[u].worker = next_worker + segment;
                acc += cost[u];
            }
            next_worker += segments;
        }
    }
}

/// Drop workers that received no units (possible when units < workers
/// after clamping or a degenerate apportionment), renumbering densely.
fn renumber_workers(units: &mut [ScheduleUnit], workers: usize) {
    let mut used: Vec<usize> = (0..workers)
        .filter(|&w| units.iter().any(|u| u.worker == w))
        .collect();
    if used.is_empty() {
        used.push(0);
    }
    let renumber: BTreeMap<usize, usize> = used.iter().enumerate().map(|(i, &w)| (w, i)).collect();
    for unit in units.iter_mut() {
        unit.worker = *renumber.get(&unit.worker).unwrap_or(&0);
    }
}

/// The per-worker projection of a global firing order.
fn project_period(period: &[Step], units: &[ScheduleUnit], workers: usize) -> Vec<Vec<Step>> {
    let mut lists: Vec<Vec<Step>> = vec![Vec::new(); workers.max(1)];
    for step in period {
        lists[units[step.unit as usize].worker].push(*step);
    }
    lists
}

/// Which units are *active* in one mode of a mode-dependent graph.
///
/// The modal unit fires its mode-`mode` member only, so the slices of the
/// graph that exist purely to feed (or be fed by) the *other* arms make no
/// progress in this mode — a periodic schedule must gate them, or their
/// buffers would drift. A unit gates when any buffer it writes has a gated
/// consumer (or the modal unit not reading it this mode), or any buffer it
/// reads has a gated producer (or the modal unit not writing it this
/// mode); the condition propagates to a fixpoint, so gating walks outward
/// from the modal seam through whole chains (a gated node gates its source
/// upstream and its sink downstream). Unread buffers never gate their
/// writer — the engines drop those commits. Because gating is driven
/// purely by buffer endpoints, both endpoints of any buffer are active in
/// the same modes, which is what keeps every buffer's level untouched
/// across its off-modes.
///
/// The modal unit itself is never gated; if the fixpoint leaves one of its
/// mode-`mode` counterparties gated the mode has no periodic schedule at
/// all and the cluster is rejected.
fn mode_gating(
    graph: &RtGraph,
    units: &[ScheduleUnit],
    access: &[UnitAccess],
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    modal_unit: usize,
    mode: usize,
) -> Result<Vec<bool>, ScheduleError> {
    let touches = |list: &[(RtBufferId, usize)], b: RtBufferId| list.iter().any(|&(lb, _)| lb == b);
    let mut active = vec![true; units.len()];
    loop {
        let mut changed = false;
        for u in 0..units.len() {
            if !active[u] || u == modal_unit {
                continue;
            }
            let gated = access[u]
                .writes
                .iter()
                .any(|&(b, _)| match consumer_unit[b] {
                    None => false,
                    Some(c) => !active[c as usize] || !touches(&access[c as usize].reads, b),
                })
                || access[u]
                    .reads
                    .iter()
                    .any(|&(b, _)| match producer_unit[b] {
                        None => false,
                        Some(p) => !active[p as usize] || !touches(&access[p as usize].writes, b),
                    });
            if gated {
                active[u] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &(b, _) in &access[modal_unit].reads {
        match producer_unit[b] {
            Some(p) if active[p as usize] => {}
            _ => {
                return Err(ScheduleError::Invalid(format!(
                    "mode {mode}: the modal unit reads buffer `{}` but its \
                     producer is gated in that mode",
                    graph.buffers[b].name
                )))
            }
        }
    }
    for &(b, _) in &access[modal_unit].writes {
        if let Some(c) = consumer_unit[b] {
            if !active[c as usize] {
                return Err(ScheduleError::Invalid(format!(
                    "mode {mode}: the modal unit writes buffer `{}` but its \
                     consumer is gated in that mode",
                    graph.buffers[b].name
                )));
            }
        }
    }
    Ok(active)
}

/// One mode's repetition vector: gate the off-mode slice, solve the SDF
/// balance equations over the active units, and insist the modal unit
/// itself fires (a mode in which it cannot is not a mode).
fn mode_repetitions(
    graph: &RtGraph,
    units: &[ScheduleUnit],
    access: &[UnitAccess],
    producer_unit: &IndexVec<RtBufferId, Option<u32>>,
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    modal_unit: usize,
    mode: usize,
) -> Result<Vec<u64>, ScheduleError> {
    let active = mode_gating(
        graph,
        units,
        access,
        producer_unit,
        consumer_unit,
        modal_unit,
        mode,
    )?;
    let reps = repetition_vector(
        graph,
        access,
        producer_unit,
        consumer_unit,
        &active,
        units.len(),
    )?;
    if reps[modal_unit] == 0 {
        return Err(ScheduleError::Invalid(format!(
            "mode {mode}: the repetition vector fires the modal unit zero times"
        )));
    }
    Ok(reps)
}

/// Derive the drain/fill transition program for one ordered mode pair: the
/// firing sequence taking mode `from`'s end-of-period levels to mode
/// `to`'s entry levels. Every per-mode period is anchored at the graph's
/// initial levels and proven level-preserving, so both states coincide and
/// the derived program is empty; the net-flow replay here is the defensive
/// check that derivation *notices* if a future synthesis breaks that
/// anchoring instead of silently emitting an unsound empty program.
fn derive_transition(
    graph: &RtGraph,
    access_from: &[UnitAccess],
    consumer_unit: &IndexVec<RtBufferId, Option<u32>>,
    period_from: &[Step],
    from: usize,
    to: usize,
) -> Result<Vec<Step>, ScheduleError> {
    let mut net: IndexVec<RtBufferId, i128> = IndexVec::from_elem(0, graph.buffers.len());
    for step in period_from {
        let a = &access_from[step.unit as usize];
        for &(b, c) in &a.reads {
            net[b] -= step.times as i128 * c as i128;
        }
        for &(b, c) in &a.writes {
            if consumer_unit[b].is_some() {
                net[b] += step.times as i128 * c as i128;
            }
        }
    }
    if let Some(b) = graph
        .buffers
        .indices()
        .find(|&b| consumer_unit[b].is_some() && net[b] != 0)
    {
        return Err(ScheduleError::Invalid(format!(
            "transition {from}->{to}: mode {from}'s period shifts buffer `{}` \
             by {} tokens, so its end state is not mode {to}'s entry state \
             and no drain/fill program is derivable",
            graph.buffers[b].name, net[b]
        )));
    }
    Ok(Vec::new())
}

/// Per-mode synthesis for a **mode-dependent** modal cluster (see
/// [`modal_admission`]): one SDF repetition vector, admitted period and
/// worker projection per mode — each over the mode's active slice of the
/// graph — plus a drain/fill transition program for every ordered mode
/// pair and the CTA seam-latency result. One worker partition serves every
/// mode (balanced by each unit's worst mode), fusion is off (a fused run
/// compiled against one mode's token flow would be unsound in another),
/// and the top-level period/workers/repetitions mirror mode 0.
fn synthesize_mode_dependent(
    graph: &RtGraph,
    plan: &RtPlan,
    workers: usize,
    info: &ModalClusterInfo,
    config: &SynthesisConfig,
) -> Result<StaticSchedule, ScheduleError> {
    let seam_latency_bound = config.seam_latency_bound;
    let mut timer = PhaseTimer::start();
    let mut units = build_units(graph, plan, Some(info));
    let support = unit_access(graph, &units);
    let (producer_unit, consumer_unit) = buffer_endpoints(graph, &support);
    let modal_unit = units
        .iter()
        .position(|u| matches!(u.kind, UnitKind::Modal { .. }))
        .expect("modal admission implies a modal unit");
    let n_modes = info.members.len();
    let capacity = engine_capacities(graph);
    timer.lap("modal_admission");

    // --- Per mode: gate the off-mode slice, solve the mode's repetition
    // vector, admit a period by the same greedy bursting replay the
    // uniform path uses (under the mode's access lists).
    let mut accesses: Vec<Vec<UnitAccess>> = Vec::with_capacity(n_modes);
    let mut reps_table: Vec<Vec<u64>> = Vec::with_capacity(n_modes);
    let mut periods: Vec<Vec<Step>> = Vec::with_capacity(n_modes);
    for m in 0..n_modes {
        let access = mode_access(graph, &units, m);
        let reps = mode_repetitions(
            graph,
            &units,
            &access,
            &producer_unit,
            &consumer_unit,
            modal_unit,
            m,
        )?;
        let required: u64 = reps.iter().sum();
        if required > MAX_PERIOD_FIRINGS {
            return Err(ScheduleError::PeriodTooLong { firings: required });
        }
        let period = greedy_period(graph, &access, &consumer_unit, &capacity, &reps)?;
        accesses.push(access);
        reps_table.push(reps);
        periods.push(period);
    }
    for (u, unit) in units.iter_mut().enumerate() {
        unit.repetitions = reps_table[0][u];
    }
    timer.lap("per_mode_synthesis");
    let components = assign_components(&mut units, graph, &producer_unit, &consumer_unit);

    // --- One worker partition for all modes: balance by each unit's worst
    // mode (reps × response), cut pipelines in first-firing order across
    // the concatenated mode periods so units gated in mode 0 still get a
    // dataflow position.
    let workers = workers.clamp(1, units.len().max(1));
    let cost: Vec<f64> = match config.cost_model.as_ref() {
        // Declared costs: the historical expression, byte for byte (see
        // the uniform path).
        None => units
            .iter()
            .enumerate()
            .map(|(u, unit)| {
                (0..n_modes)
                    .map(|m| {
                        let per_firing = match &unit.kind {
                            UnitKind::Node(id)
                            | UnitKind::Cluster {
                                representative: id, ..
                            } => graph.nodes[*id].response.to_f64().max(1e-9),
                            UnitKind::Modal { members } => {
                                graph.nodes[members[m]].response.to_f64().max(1e-9)
                            }
                            UnitKind::Source(_) | UnitKind::Sink(_) => 1e-8,
                        };
                        reps_table[m][u] as f64 * per_firing
                    })
                    .fold(0.0, f64::max)
            })
            .collect(),
        Some(model) => units
            .iter()
            .enumerate()
            .map(|(u, unit)| {
                (0..n_modes)
                    .map(|m| {
                        let per_firing_ns = match &unit.kind {
                            UnitKind::Node(id)
                            | UnitKind::Cluster {
                                representative: id, ..
                            } => measured_cost_ns(graph, *id, model),
                            UnitKind::Modal { members } => {
                                measured_cost_ns(graph, members[m], model)
                            }
                            UnitKind::Source(_) | UnitKind::Sink(_) => 10.0,
                        };
                        reps_table[m][u] as f64 * per_firing_ns
                    })
                    .fold(0.0, f64::max)
            })
            .collect(),
    };
    let order: Vec<Step> = periods.iter().flatten().copied().collect();
    partition_workers(&mut units, &cost, components, workers, &order);
    renumber_workers(&mut units, workers);
    let worker_count = units.iter().map(|u| u.worker + 1).max().unwrap_or(1);
    let steps: Vec<Vec<Vec<Step>>> = periods
        .iter()
        .map(|p| project_period(p, &units, worker_count))
        .collect();
    let cross_buffers: Vec<RtBufferId> = graph
        .buffers
        .indices()
        .filter(|&b| match (producer_unit[b], consumer_unit[b]) {
            (Some(p), Some(c)) => units[p as usize].worker != units[c as usize].worker,
            _ => false,
        })
        .collect();

    timer.lap("partition");

    // --- Drain/fill transition programs, one per ordered mode pair.
    let mut transitions: Vec<Vec<Step>> = Vec::with_capacity(n_modes * n_modes);
    for from in 0..n_modes {
        for to in 0..n_modes {
            transitions.push(derive_transition(
                graph,
                &accesses[from],
                &consumer_unit,
                &periods[from],
                from,
                to,
            )?);
        }
    }

    let fused_workers: Vec<Vec<WorkItem>> = steps[0]
        .iter()
        .map(|w| w.iter().map(|&s| WorkItem::Step(s)).collect())
        .collect();
    let local_level_max: IndexVec<RtBufferId, u64> = capacity
        .iter()
        .map(|&c| c as u64)
        .collect::<Vec<_>>()
        .into();
    let predicted_utilization = worker_utilization(&units, &cost, worker_count);
    let mut schedule = StaticSchedule {
        period: periods[0].clone(),
        workers: steps[0].clone(),
        units,
        components,
        producer_unit,
        consumer_unit,
        cross_buffers,
        fused_workers,
        fusion: FusionStats::default(),
        local_level_max,
        modes: Some(ModalSchedule {
            unit: modal_unit as u32,
            arms: info.members.clone(),
            arm_names: info
                .members
                .iter()
                .map(|&n| graph.nodes[n].name.clone())
                .collect(),
            dependent: Some(ModeDependent {
                reps: reps_table,
                periods,
                steps,
                transitions,
                seam_latency_max: Rational::ZERO,
                seam_latency_bound,
            }),
        }),
        phases: Vec::new(),
        cost_model_hash: config.cost_model.as_ref().map(|m| m.fingerprint()),
        predicted_utilization,
    };
    timer.lap("transition_synthesis");
    // --- Record the worst-case seam latency over all ordered pairs. The
    // per-pair CTA query also enforces the configured bound, so a
    // violation surfaces here as [`ScheduleError::SeamLatency`].
    let mut latency_max = Rational::ZERO;
    for from in 0..n_modes as u32 {
        for to in 0..n_modes as u32 {
            let latency = schedule.seam_latency(graph, from, to)?;
            if latency > latency_max {
                latency_max = latency;
            }
        }
    }
    schedule
        .modes
        .as_mut()
        .expect("built above")
        .dependent
        .as_mut()
        .expect("built above")
        .seam_latency_max = latency_max;
    timer.lap("seam_latency_proof");
    // Admission: per-mode validity and every switch seam proven by exact
    // replay before the schedule is released.
    schedule.validate(graph)?;
    schedule.validate_transitions(graph)?;
    timer.lap("admission_proof");
    schedule.phases = timer.phases;
    Ok(schedule)
}

/// The per-mode firing rates of a mode-dependent modal graph, without a
/// full synthesis: what the scripted self-timed engine needs to resolve a
/// [`ModeScript`] into a [`ModePlan`] (period lengths and per-period
/// source/sink token counts). Returns `Ok(None)` for graphs that are not
/// mode-dependent modal (uniform, no clusters, or union-advance — none of
/// which need a plan), and the admission error for inadmissible clusters.
pub fn mode_dependent_rates(
    graph: &RtGraph,
    plan: &RtPlan,
) -> Result<Option<ModeDependentRates>, ScheduleError> {
    let Some(info) = modal_admission(graph, plan)? else {
        return Ok(None);
    };
    if !info.mode_dependent {
        return Ok(None);
    }
    let units = build_units(graph, plan, Some(&info));
    let support = unit_access(graph, &units);
    let (producer_unit, consumer_unit) = buffer_endpoints(graph, &support);
    let modal_unit = units
        .iter()
        .position(|u| matches!(u.kind, UnitKind::Modal { .. }))
        .expect("modal admission implies a modal unit");
    let n_modes = info.members.len();
    let mut rates = ModeDependentRates {
        modal: vec![0; n_modes],
        sources: vec![vec![0; graph.sources.len()]; n_modes],
        sinks: vec![vec![0; graph.sinks.len()]; n_modes],
    };
    for m in 0..n_modes {
        let access = mode_access(graph, &units, m);
        let reps = mode_repetitions(
            graph,
            &units,
            &access,
            &producer_unit,
            &consumer_unit,
            modal_unit,
            m,
        )?;
        rates.modal[m] = reps[modal_unit];
        for (u, unit) in units.iter().enumerate() {
            match unit.kind {
                UnitKind::Source(id) => rates.sources[m][id.index()] = reps[u],
                UnitKind::Sink(id) => rates.sinks[m][id.index()] = reps[u],
                _ => {}
            }
        }
    }
    Ok(Some(rates))
}

/// FNV-1a, locally (the compiler crate does not depend on the simulator's
/// trace hasher; the constants are the standard 64-bit FNV parameters, so
/// digests are stable across the workspace).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtgraph;
    use crate::{compile, CompilerOptions};
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    fn synth_with(src: &str, workers: usize, fuse: bool) -> (rtgraph::RtGraph, StaticSchedule) {
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        let schedule = synthesize_with(&graph, &plan, workers, fuse).expect("schedulable");
        (graph, schedule)
    }

    // Fusion forced on so the tests are deterministic under the CI
    // fusion-off (`OIL_RT_FUSION=0`) leg.
    fn synth(src: &str, workers: usize) -> (rtgraph::RtGraph, StaticSchedule) {
        synth_with(src, workers, true)
    }

    const PIPELINE: &str = r#"
        mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
        mod seq Q(int m, out int b){ loop{ g(m:2, out b); } while(1); }
        mod par D(){
            fifo int mid;
            source int x = src() @ 2 kHz;
            sink int y = snk() @ 1 kHz;
            P(x, out mid) || Q(mid, out y)
        }
    "#;

    #[test]
    fn one_period_fires_the_repetition_vector_and_loops() {
        let (graph, s) = synth(PIPELINE, 1);
        // P fires 2× per Q firing; source 2 samples, sink 1 drain.
        let reps: Vec<u64> = s.units.iter().map(|u| u.repetitions).collect();
        assert_eq!(reps, vec![2, 1, 2, 1], "{:?}", s.units);
        assert_eq!(s.period_firings(), 6);
        assert_eq!(s.components, 1);
        s.validate(&graph).expect("admitted schedules re-validate");
    }

    #[test]
    fn single_worker_schedules_have_no_crossings() {
        let (_, s) = synth(PIPELINE, 1);
        assert_eq!(s.worker_count(), 1);
        assert!(s.cross_buffers.is_empty());
    }

    #[test]
    fn split_pipelines_cross_at_stage_boundaries() {
        let (_, s) = synth(PIPELINE, 2);
        assert_eq!(s.worker_count(), 2);
        // A 4-unit chain (source → P → Q → sink) cut once: exactly one or
        // two buffers cross (the cut buffer; the source/sink conduits stay
        // with their stage).
        assert!(
            !s.cross_buffers.is_empty() && s.cross_buffers.len() <= 2,
            "{:?}",
            s.cross_buffers
        );
        // Both workers have work.
        assert!(s.workers.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn independent_chains_stay_whole_per_worker() {
        let src = r#"
            mod seq S(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x0 = src() @ 1 kHz;
                sink int y0 = snk() @ 1 kHz;
                source int x1 = src() @ 1 kHz;
                sink int y1 = snk() @ 1 kHz;
                S(x0, out y0) || S(x1, out y1)
            }
        "#;
        let (_, s) = synth(src, 2);
        assert_eq!(s.components, 2);
        assert_eq!(s.worker_count(), 2);
        assert!(
            s.cross_buffers.is_empty(),
            "independent components must not cross: {:?}",
            s.cross_buffers
        );
    }

    #[test]
    fn uniform_modal_clusters_collapse_to_quasi_static_units() {
        let src = r#"
            mod seq S(int a, out int b){
                loop{ if(...){ t = f(a:2); } else { t = g(a:2); } init(t, out b); } while(1);
            }
            mod par D(){
                source int x = src() @ 2 kHz;
                sink int y = snk() @ 1 kHz;
                S(x, out y)
            }
        "#;
        let (graph, s) = synth(src, 2);
        let cluster = s
            .units
            .iter()
            .find_map(|u| match &u.kind {
                UnitKind::Cluster {
                    representative,
                    members,
                } => Some((*representative, members.clone())),
                _ => None,
            })
            .expect("the modal twins form one quasi-static unit");
        assert_eq!(cluster.1.len(), 2);
        assert_eq!(cluster.0, cluster.1[0], "lowest id is the representative");
        s.validate(&graph).unwrap();
    }

    #[test]
    fn non_uniform_modal_demo_synthesizes_per_mode_schedules() {
        // The demo's merge twins share one write list and read disjoint
        // buffers — exactly the union-advance shape, so synthesis admits
        // them as a modal unit instead of rejecting.
        let graph = rtgraph::non_uniform_merge_demo();
        let plan = rtgraph::plan(&graph);
        let s = synthesize_with(&graph, &plan, 2, true).expect("modal-admissible");
        let modes = s.modes.as_ref().expect("a modal schedule");
        assert_eq!(modes.arms.len(), 2);
        assert_eq!(modes.arm_names.len(), 2);
        assert!(matches!(
            &s.units[modes.unit as usize].kind,
            UnitKind::Modal { members } if members == &modes.arms
        ));
        // Per-mode digests differ (the corpus distinguishes arms) while
        // the structural digest is shared.
        assert_ne!(s.digest_mode(0), s.digest_mode(1));
        s.validate(&graph).expect("steady state re-validates");
        s.validate_transitions(&graph)
            .expect("every (mode, mode') seam re-validates");
        // The modal unit never lands inside a fused run.
        for items in &s.fused_workers {
            for item in items {
                if let WorkItem::Fused(run) = item {
                    assert!(run.stages.iter().all(|st| st.unit != modes.unit));
                }
            }
        }
    }

    /// The demo with its second twin writing two tokens per firing: the
    /// arms diverge in write counts, so union-advance no longer applies and
    /// admission must go mode-dependent.
    fn write_divergent_demo() -> rtgraph::RtGraph {
        let mut graph = rtgraph::non_uniform_merge_demo();
        let n1 = graph.nodes.indices().nth(1).unwrap();
        graph.nodes[n1].writes[0].1 = 2;
        graph
    }

    #[test]
    fn write_divergent_arms_synthesize_per_mode_schedules() {
        // PR 7 rejected this shape (divergent write lists break the
        // union-advance argument); per-mode synthesis now admits it with
        // one repetition vector and period per mode.
        let graph = write_divergent_demo();
        let plan = rtgraph::plan(&graph);
        let s = synthesize(&graph, &plan, 2, &SynthesisConfig::default()).expect("mode-dependent");
        let modes = s.modes.as_ref().expect("a modal schedule");
        let dep = modes.dependent.as_ref().expect("mode-dependent tables");
        // Unit order: modal {n0, n1}, n2, source a, source b, sink. Mode 0
        // fires n0 (one token into t) and gates source b; mode 1 fires n1
        // (two tokens into t), so n2 and the sink run twice and source a
        // gates. Hand-solved balance equations.
        assert_eq!(dep.reps, vec![vec![1, 1, 1, 0, 1], vec![1, 2, 0, 1, 2]]);
        // Every per-mode period anchors at the initial levels, so every
        // derived drain/fill program is empty — and still proven by replay.
        assert_eq!(dep.transitions.len(), 4);
        assert!(dep.transitions.iter().all(Vec::is_empty));
        assert!(dep.seam_latency_max > Rational::ZERO);
        s.validate(&graph)
            .expect("per-mode steady state re-validates");
        s.validate_transitions(&graph)
            .expect("every (mode, mode') seam re-validates");
        // The corpus distinguishes modes and seams.
        assert_ne!(s.digest_mode(0), s.digest_mode(1));
        assert_ne!(s.digest_transition(0, 1), s.digest_transition(1, 0));
        // Fusion is structurally off for mode-dependent schedules: the
        // on/off synthesis results coincide exactly.
        let off = synthesize_with(&graph, &plan, 2, false).unwrap();
        let on = synthesize_with(&graph, &plan, 2, true).unwrap();
        assert_eq!(on, off);
        assert_eq!(on.fusion, FusionStats::default());
    }

    #[test]
    fn shared_read_arms_synthesize_per_mode_schedules() {
        // The second twin also reads the first twin's input buffer:
        // overlapping read sets break union-advance (the union would steal
        // the other arm's tokens) but each mode is individually consistent.
        let mut graph = rtgraph::non_uniform_merge_demo();
        let n0 = graph.nodes.indices().next().unwrap();
        let n1 = graph.nodes.indices().nth(1).unwrap();
        let shared = graph.nodes[n0].reads[0];
        graph.nodes[n1].reads.push(shared);
        let plan = rtgraph::plan(&graph);
        let info = modal_admission(&graph, &plan).unwrap().expect("modal");
        assert!(info.mode_dependent);
        let s = synthesize(&graph, &plan, 2, &SynthesisConfig::default()).expect("mode-dependent");
        let dep = s.modes.as_ref().unwrap().dependent.as_ref().unwrap();
        // Mode 1 consumes both inputs, so *no* source gates there; mode 0
        // still gates source b.
        assert_eq!(dep.reps[0], vec![1, 1, 1, 0, 1]);
        assert_eq!(dep.reps[1], vec![1, 1, 1, 1, 1]);
        s.validate_transitions(&graph).unwrap();
    }

    #[test]
    fn arm_reading_a_modal_written_buffer_is_rejected() {
        // An arm reading a buffer any arm writes stays inadmissible even
        // under per-mode synthesis: the only producer such a buffer could
        // have is the modal unit itself, so the reading mode would either
        // self-loop or starve.
        let mut graph = rtgraph::non_uniform_merge_demo();
        let n1 = graph.nodes.indices().nth(1).unwrap();
        let written = graph.nodes[n1].writes[0].0;
        graph.nodes[n1].reads.push((written, 1));
        let plan = rtgraph::plan(&graph);
        match synthesize(&graph, &plan, 2, &SynthesisConfig::default()) {
            Err(ScheduleError::NonUniformCluster { cluster, members }) => {
                assert_eq!(cluster, 0);
                // Reading `t` makes it contested, so clustering also pulls
                // its other consumer in; the reporting names every member.
                assert!(
                    members.contains(&graph.nodes[n1].name),
                    "member names are reported: {members:?}"
                );
                let rendered = ScheduleError::NonUniformCluster { cluster, members }.to_string();
                assert!(
                    rendered.contains(&graph.nodes[n1].name),
                    "display names the members: {rendered}"
                );
            }
            other => panic!("expected a NonUniformCluster rejection, got {other:?}"),
        }
    }

    #[test]
    fn seam_latency_bound_is_enforced_per_pair() {
        let graph = write_divergent_demo();
        let plan = rtgraph::plan(&graph);
        let free = synthesize(&graph, &plan, 2, &SynthesisConfig::default()).unwrap();
        let worst = free
            .modes
            .as_ref()
            .unwrap()
            .dependent
            .as_ref()
            .unwrap()
            .seam_latency_max;
        // A bound at exactly the worst seam is feasible (exact rational
        // arithmetic, no tolerance)...
        let ok = synthesize(
            &graph,
            &plan,
            2,
            &SynthesisConfig {
                seam_latency_bound: Some(worst),
                ..SynthesisConfig::default()
            },
        )
        .unwrap();
        let dep = ok.modes.as_ref().unwrap().dependent.as_ref().unwrap();
        assert_eq!(dep.seam_latency_bound, Some(worst));
        assert_eq!(dep.seam_latency_max, worst);
        // ...while any tighter bound is a SeamLatency rejection that names
        // the violated pair and both figures.
        let tighter = worst * Rational::new(1, 2);
        match synthesize(
            &graph,
            &plan,
            2,
            &SynthesisConfig {
                seam_latency_bound: Some(tighter),
                ..SynthesisConfig::default()
            },
        ) {
            Err(ScheduleError::SeamLatency { latency, bound, .. }) => {
                assert_eq!(bound, tighter);
                assert!(latency > bound);
            }
            other => panic!("expected a SeamLatency rejection, got {other:?}"),
        }
    }

    #[test]
    fn mode_script_normalizes_switch_points() {
        // Unsorted entries sort; duplicate firing indices keep the last
        // entry (later switches win, matching `arm_at`'s "last switch at or
        // before" semantics).
        let script = ModeScript::new(0, vec![(5, 2), (3, 1), (5, 9)]);
        assert_eq!(script.switches, vec![(3, 1), (5, 9)]);
        assert_eq!(script.arm_at(2), 0);
        assert_eq!(script.arm_at(3), 1);
        assert_eq!(script.arm_at(5), 9);
    }

    #[test]
    fn mode_script_validates_arm_indices() {
        assert!(ModeScript::new(0, vec![(3, 1)]).validate_arms(2).is_ok());
        let bad_initial = ModeScript::new(7, vec![]).validate_arms(2).unwrap_err();
        assert!(bad_initial.contains("selects arm 7"), "{bad_initial}");
        let bad_switch = ModeScript::new(0, vec![(3, 2)])
            .validate_arms(2)
            .unwrap_err();
        assert!(bad_switch.contains("arm 2"), "{bad_switch}");
    }

    #[test]
    fn plan_mode_sequence_follows_the_script_at_period_boundaries() {
        let rates = ModeDependentRates {
            modal: vec![1, 1],
            sources: vec![vec![1, 0], vec![0, 1]],
            sinks: vec![vec![1], vec![2]],
        };
        // Switch at modal firing 2: two periods of mode 0, then mode 1
        // until source 1's budget drains.
        let script = ModeScript::new(0, vec![(2, 1)]);
        let plan = plan_mode_sequence(&rates, &script, |_| 5);
        assert_eq!(plan.mode_seq, vec![0, 0, 1, 1, 1, 1, 1]);
        assert_eq!(plan.mode_switches, 1);
        assert_eq!(plan.produced, vec![2, 5]);
        assert_eq!(plan.drained, vec![2 + 5 * 2]);
        assert_eq!(plan.modal_firings, 7);
    }

    #[test]
    fn plan_mode_sequence_past_horizon_never_switches() {
        // A switch point beyond the run's modal firings executes as the
        // constant-initial-arm run with zero switches (the satellite-3
        // regression at the planning layer).
        let rates = ModeDependentRates {
            modal: vec![1, 1],
            sources: vec![vec![1, 0], vec![0, 1]],
            sinks: vec![vec![1], vec![2]],
        };
        let script = ModeScript::new(0, vec![(1_000_000, 1)]);
        let plan = plan_mode_sequence(&rates, &script, |_| 3);
        let constant = plan_mode_sequence(&rates, &ModeScript::new(0, vec![]), |_| 3);
        assert_eq!(plan, constant);
        assert_eq!(plan.mode_seq, vec![0, 0, 0]);
        assert_eq!(plan.mode_switches, 0);
    }

    #[test]
    fn parse_fusion_accepts_the_documented_values_only() {
        assert!(parse_fusion(""));
        assert!(parse_fusion("1"));
        assert!(!parse_fusion("0"));
        assert!(std::panic::catch_unwind(|| parse_fusion("yes")).is_err());
    }

    #[test]
    fn collapsed_twin_matches_the_modal_period_flow() {
        // The collapsed (uniform) twin of a modal graph must carry the
        // exact per-buffer token flow of the modal schedule — the static
        // bridge that lets the value-free simulator oracle cover modal
        // programs.
        let graph = rtgraph::non_uniform_merge_demo();
        let plan = rtgraph::plan(&graph);
        let s = synthesize_with(&graph, &plan, 1, true).unwrap();
        let info = modal_admission(&graph, &plan).unwrap().expect("modal");
        let collapsed = collapse_modal(&graph, &info);
        let cplan = rtgraph::plan(&collapsed);
        assert!(
            cplan.clusters.is_empty(),
            "the collapsed twin is uniform: {:?}",
            cplan.clusters
        );
        let cs = synthesize_with(&collapsed, &cplan, 1, true).unwrap();
        assert!(cs.modes.is_none());
        let flow = |g: &rtgraph::RtGraph, sch: &StaticSchedule| -> BTreeMap<String, u64> {
            let access = unit_access(g, &sch.units);
            let mut produced: BTreeMap<String, u64> = BTreeMap::new();
            for (u, a) in access.iter().enumerate() {
                for &(b, c) in &a.writes {
                    *produced.entry(g.buffers[b].name.clone()).or_default() +=
                        sch.units[u].repetitions * c as u64;
                }
            }
            produced
        };
        assert_eq!(flow(&graph, &s), flow(&collapsed, &cs));
    }

    #[test]
    fn covering_iterations_cover_the_source_budgets() {
        let (graph, s) = synth(PIPELINE, 1);
        // Source fires 2× per iteration; a 5-sample budget needs 3
        // iterations (⌈5/2⌉), covering 6 ≥ 5 samples.
        let iters = s.covering_iterations(&graph, |_| 5);
        assert_eq!(iters, vec![3]);
        assert_eq!(s.covering_iterations(&graph, |_| 0), vec![0]);
    }

    #[test]
    fn covering_iterations_include_the_standing_stock_drain() {
        // An init prologue leaves standing tokens a level-preserving period
        // never consumes, but a data-driven engine drains at end of run —
        // the covering count must include the extra firings they enable.
        let src = r#"
            mod seq A(int a, out int b){ init(out b:4); loop{ f(a, out b); } while(1); }
            mod seq B(int a, out int b){ loop{ g(a:2, out b); } while(1); }
            mod par D(){
                fifo int z;
                source int x = src() @ 2 kHz;
                sink int y = snk() @ 1 kHz;
                A(x, out z) || B(z, out y)
            }
        "#;
        let (graph, s) = synth(src, 1);
        // Budget 10: A fires 10, z carries 4 + 10 = 14, B fires 7 — more
        // than the 5 source-covering iterations (q(B) = 1) alone would run.
        let iters = s.covering_iterations(&graph, |_| 10);
        let b_unit = s
            .units
            .iter()
            .position(
                |u| matches!(&u.kind, UnitKind::Node(id) if graph.nodes[*id].name.contains("B")),
            )
            .expect("B's task is a unit");
        let fired_b = iters[s.units[b_unit].component as usize] * s.units[b_unit].repetitions;
        assert!(fired_b >= 7, "B must cover the stock drain: {fired_b}");
    }

    #[test]
    fn digests_are_stable_and_sensitive_to_worker_count() {
        let (_, a1) = synth(PIPELINE, 1);
        let (_, b1) = synth(PIPELINE, 1);
        assert_eq!(a1.digest(), b1.digest());
        let (_, a2) = synth(PIPELINE, 2);
        assert_ne!(a1.digest(), a2.digest());
    }

    #[test]
    fn fusion_merges_single_worker_pipelines() {
        let (graph, s) = synth(PIPELINE, 1);
        assert!(
            s.fusion.runs_fused >= 1,
            "a one-worker pipeline must fuse: {:?}",
            s.fused_workers
        );
        assert!(s.fusion.fused_chain_len_max >= 2);
        // Every firing of the projection is preserved across the rewrite.
        let fused_firings: u64 = s.fused_workers[0]
            .iter()
            .map(|i| match i {
                WorkItem::Step(st) => st.times as u64,
                WorkItem::Fused(run) => run.firings(),
            })
            .sum();
        assert_eq!(fused_firings, s.period_firings());
        s.validate(&graph).expect("fused schedules re-validate");
    }

    #[test]
    fn fusion_off_leaves_the_projection_untouched() {
        let (graph, s) = synth_with(PIPELINE, 1, false);
        assert_eq!(s.fusion, FusionStats::default());
        let plain: Vec<Step> = s.fused_workers[0]
            .iter()
            .map(|i| match i {
                WorkItem::Step(st) => *st,
                WorkItem::Fused(_) => panic!("no fused runs with fusion off"),
            })
            .collect();
        assert_eq!(plain, s.workers[0]);
        s.validate(&graph).unwrap();
    }

    #[test]
    fn fusion_changes_the_digest_but_not_the_period() {
        let (_, on) = synth(PIPELINE, 1);
        let (_, off) = synth_with(PIPELINE, 1, false);
        assert_eq!(on.period, off.period, "fusion must not alter the period");
        assert_eq!(on.workers, off.workers);
        assert_ne!(on.digest(), off.digest());
    }

    #[test]
    fn fused_runs_never_touch_cross_worker_buffers() {
        let (graph, s) = synth(PIPELINE, 2);
        let access = unit_access(&graph, &s.units);
        for items in &s.fused_workers {
            for item in items {
                if let WorkItem::Fused(run) = item {
                    for st in &run.stages {
                        let a = &access[st.unit as usize];
                        for &(b, _) in a.reads.iter().chain(&a.writes) {
                            assert!(
                                !s.cross_buffers.contains(&b),
                                "fused stage touches cross buffer `{}`",
                                graph.buffers[b].name
                            );
                        }
                    }
                }
            }
        }
        s.validate(&graph).unwrap();
    }

    #[test]
    fn whole_component_runs_are_batchable() {
        // A single linear chain on one worker fuses into one run covering
        // the whole component, which the executor may iterate back to back.
        let src = r#"
            mod seq S(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                S(x, out y)
            }
        "#;
        let (graph, s) = synth(src, 1);
        let batched = s.fused_workers[0].iter().any(|i| match i {
            WorkItem::Fused(run) => run.batch,
            WorkItem::Step(_) => false,
        });
        assert!(
            batched,
            "a whole-component run must be batchable: {:?}",
            s.fused_workers
        );
        s.validate(&graph).unwrap();
    }
}
