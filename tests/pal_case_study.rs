//! Integration test for the PAL decoder case study (paper Section VI):
//! analysis, simulation and the native signal path must all agree.

use oil::dataflow::Rational;
use oil::dsp::generator::dominant_frequency;
use oil::dsp::CompositeSignal;
use oil::pal::{analyze_pal, simulate_pal, NativePalDecoder, PAL_DECODER_OIL};

#[test]
fn pal_program_compiles_and_matches_paper_structure() {
    let (compiled, analysis) = analyze_pal().expect("the PAL decoder is schedulable");
    // The application graph has the six leaf instances of Fig. 11 and the
    // seven channels (rf, mas, mvs, vid, aud, screen, speakers).
    assert_eq!(compiled.analyzed.graph.instances.len(), 6);
    assert_eq!(compiled.analyzed.graph.channels.len(), 7);
    // Rate-conversion factors of Fig. 12: gamma = 1/25, 10/16 and 1/8 —
    // exact equalities, straight from the exact-rational analysis.
    assert_eq!(
        analysis.channel_rates["aud"] / analysis.channel_rates["mas"],
        Rational::new(1, 25)
    );
    assert_eq!(
        analysis.channel_rates["vid"] / analysis.channel_rates["mvs"],
        Rational::new(10, 16)
    );
    assert_eq!(
        analysis.channel_rates["speakers"] / analysis.channel_rates["aud"],
        Rational::new(1, 8)
    );
    // Bounded audio/video skew.
    assert!(analysis.av_skew().unwrap() <= Rational::new(1, 1000));
}

#[test]
fn pal_simulation_validates_the_analysis() {
    let report = simulate_pal(2e-3).expect("simulation runs");
    assert!(report.meets_constraints(), "{:?}", report.metrics);
    assert!((report.screen_rate - 4e6).abs() / 4e6 < 0.05);
    assert!((report.speaker_rate - 32e3).abs() / 32e3 < 0.10);
}

#[test]
fn pal_native_path_recovers_the_audio_tone() {
    let mut decoder = NativePalDecoder::default();
    let mut signal = CompositeSignal::pal_default();
    let rf = signal.block(320_000);
    let out = decoder.decode(&rf);
    assert_eq!(out.video.len(), 320_000 * 10 / 16);
    assert_eq!(out.audio.len(), 320_000 / 200);
    let tone = dominant_frequency(&out.audio[out.audio.len() / 2..], 32_000.0);
    assert!((tone - 1000.0).abs() < 100.0, "recovered {tone} Hz");
}

#[test]
fn pal_source_text_is_self_contained() {
    // The program text itself is a deliverable: it must keep parsing and
    // naming the modules the paper names.
    let program = oil::lang::parse_program(PAL_DECODER_OIL).unwrap();
    for name in ["SRC_A", "SRC_V", "Mix_A", "LPF_V", "Splitter"] {
        assert!(program.module(name).is_some(), "module {name} missing");
    }
}
