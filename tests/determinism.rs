//! Determinism regression tests for the exact-rational analysis core.
//!
//! The CTA algorithms compute rates, offsets, slacks and buffer capacities in
//! exact rational arithmetic, so repeated runs on the same program must be
//! **bit-identical** — not merely close. These tests pin that property on the
//! paper's two flagship programs (Fig. 6 and Fig. 2c) across the full
//! pipeline: derivation, consistency, buffer sizing and the reported
//! channel rates/latencies.

use oil::compiler::{compile, derive_cta_model, CompilerOptions};
use oil::cta::size_buffers;
use oil::dataflow::Rational;
use oil::lang::registry::{FunctionRegistry, FunctionSignature};

fn registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for f in ["f", "g", "init", "src", "snk"] {
        reg.register(FunctionSignature::pure(f, 1e-6));
    }
    reg
}

const FIG6: &str = r#"
    mod seq B(int a, out int z){ loop{ f(a, out z); } while(1); }
    mod seq C(int a, int z, out int b){ loop{ g(a, z, out b); } while(1); }
    mod par A(int a, out int b){ fifo int z; B(a, out z) || C(a, z, out b) }
    mod par D(){
        source int x = src() @ 1 kHz;
        sink int y = snk() @ 1 kHz;
        start x 5 ms before y;
        A(x, out y)
    }
"#;

const FIG2C: &str = r#"
    mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
    mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
    mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
"#;

/// Compile the program several times and require every analysis artifact to
/// be identical across runs — exact arithmetic leaves no room for drift.
fn assert_deterministic(src: &str) {
    let reg = registry();
    let opts = CompilerOptions::default();
    let first = compile(src, &reg, &opts).unwrap();
    for run in 0..5 {
        let again = compile(src, &reg, &opts).unwrap();
        assert_eq!(
            again.consistency, first.consistency,
            "consistency drifted on run {run}"
        );
        assert_eq!(
            again.buffers, first.buffers,
            "buffer plan drifted on run {run}"
        );
        assert_eq!(
            again.sized_model, first.sized_model,
            "sized model drifted on run {run}"
        );
    }
}

#[test]
fn fig6_compilation_is_bit_identical_across_runs() {
    assert_deterministic(FIG6);
}

#[test]
fn fig2c_compilation_is_bit_identical_across_runs() {
    assert_deterministic(FIG2C);
}

#[test]
fn fig6_consistency_and_sizing_are_bit_identical_on_the_raw_model() {
    // Below the pipeline: derive the CTA model once and re-run the two core
    // algorithms directly.
    let reg = registry();
    let analyzed = oil::lang::frontend(FIG6, &reg).unwrap();
    let derived = derive_cta_model(&analyzed, &reg);

    let sizing_first = size_buffers(&derived.cta).unwrap();
    for _ in 0..5 {
        assert_eq!(size_buffers(&derived.cta).unwrap(), sizing_first);
    }

    let mut sized = derived.cta.clone();
    oil::cta::buffersizing::apply_capacities(&mut sized, &sizing_first.capacities);
    let consistency_first = sized.check_consistency().unwrap();
    for _ in 0..5 {
        assert_eq!(sized.check_consistency().unwrap(), consistency_first);
    }
}

#[test]
fn fig6_reported_rates_and_latency_are_exact() {
    let compiled = compile(FIG6, &registry(), &CompilerOptions::default()).unwrap();
    // Source and sink rates are exactly the declared 1 kHz.
    assert_eq!(
        compiled.channel_rate_exact("x"),
        Some(Rational::from_int(1000))
    );
    assert_eq!(
        compiled.channel_rate_exact("y"),
        Some(Rational::from_int(1000))
    );
    // The latency bound is an exact rational within the declared 5 ms.
    let latency = compiled.latency_between_exact("x", "y").unwrap();
    assert!(latency <= Rational::new(5, 1000));
    // And the f64 accessors are derived from the exact values.
    assert_eq!(compiled.channel_rate("x"), Some(1000.0));
    assert_eq!(compiled.latency_between("x", "y"), Some(latency.to_f64()));
}

#[test]
fn fig2c_channel_rates_are_exactly_equal() {
    let compiled = compile(FIG2C, &registry(), &CompilerOptions::default()).unwrap();
    let rx = compiled.channel_rate_exact("x").unwrap();
    let ry = compiled.channel_rate_exact("y").unwrap();
    assert!(rx.is_positive());
    assert_eq!(rx, ry);
}

// ---------------------------------------------------------------------------
// Simulator determinism hardening: the event tie-breaking rule is structural.
// ---------------------------------------------------------------------------

/// Simultaneous events are ordered by `(time, kind, id)` — sources deliver,
/// completing nodes commit, sinks consume; lower ids first — never by the
/// order events were inserted into the ready queue. This property test pins
/// that documented rule: populating the initial event queue in reversed or
/// seeded-shuffled order must produce bit-identical traces on randomly
/// generated programs.
#[test]
fn sim_traces_are_insensitive_to_event_insertion_order() {
    use oil::gen::{GenRng, ProgramScenario};
    use oil::sim::{build_simulation, picos, SimulationConfig};

    let mut checked = 0;
    for seed in 0..24u64 {
        let scenario = ProgramScenario::generate(seed);
        let Ok(compiled) = compile(
            &scenario.source,
            &scenario.registry,
            &CompilerOptions::default(),
        ) else {
            continue; // temporal rejection is legitimate; see differential.rs
        };
        checked += 1;
        let config = SimulationConfig {
            cores: 0,
            warmup_ticks: 64,
        };
        let duration = picos(0.1);

        let net = build_simulation(&compiled);
        let ticks = net.sources.len() + net.sinks.len();
        let (_, reference) = net.clone().run_traced(duration, &config);

        // Identity, reversed, and three seeded Fisher-Yates shuffles.
        let identity: Vec<usize> = (0..ticks).collect();
        let reversed: Vec<usize> = (0..ticks).rev().collect();
        let mut orders = vec![identity, reversed];
        let mut rng = GenRng::new(seed ^ 0x5EED);
        for _ in 0..3 {
            let mut p: Vec<usize> = (0..ticks).collect();
            for i in (1..p.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                p.swap(i, j);
            }
            orders.push(p);
        }
        for order in orders {
            let (_, permuted) = net
                .clone()
                .run_traced_with_tick_order(duration, &config, &order);
            assert_eq!(
                permuted.first_divergence(&reference),
                None,
                "seed {seed}: trace depends on event insertion order {order:?}"
            );
        }
    }
    assert!(checked >= 18, "only {checked} scenarios compiled");
}
