//! Differential verification of the always-on metrics registry
//! (`oil::rt::metrics`) and the profile-guided cost model
//! (`oil::compiler::costmodel`).
//!
//! Four oracles:
//!
//! 1. **Bit-identity** — enabling metrics must never change a value
//!    stream, sink sample or firing count, on any engine at any worker
//!    count. Same contract tracing is held to (`trace_differential.rs`).
//! 2. **Live oracle honesty** — on the untampered corpus, every run that
//!    beats real time must report [`DriftVerdict::Ok`]: the drift detector
//!    may only fire on real drift.
//! 3. **Cost-model steering** — a skewed synthetic cost model provably
//!    moves the partition, the moved schedule still passes
//!    `StaticSchedule::validate` (observations steer placement, never
//!    correctness), and both schedules stream bit-identical values.
//! 4. **Detection latency** — an injected 5x-slower kernel is reported as
//!    `Violated` in the *first* closed window, not at end-of-run.

use oil::compiler::costmodel::{KernelCost, KernelCostModel};
use oil::compiler::schedule::{synthesize, ScheduleError, SynthesisConfig};
use oil::compiler::{compile, rtgraph, CompileError, CompilerOptions};
use oil::gen::ProgramScenario;
use oil::lang::registry::{FunctionRegistry, FunctionSignature};
use oil::rt::{
    execute, execute_selftimed, execute_staticsched, DriftVerdict, Kernel, KernelLibrary,
    MetricsConfig, RtConfig, SelfTimedConfig, StaticConfig,
};
use oil::sim::picos;

const WORKERS: [usize; 3] = [1, 2, 4];
const MIN_ACCEPTED: usize = 8;
const HORIZON_S: f64 = 0.05;

fn compile_scenario(scenario: &ProgramScenario) -> Option<oil::compiler::CompiledProgram> {
    match compile(
        &scenario.source,
        &scenario.registry,
        &CompilerOptions::default(),
    ) {
        Ok(compiled) => Some(compiled),
        Err(CompileError::Temporal(_)) => None,
        Err(CompileError::Frontend(diags)) => panic!(
            "seed {}: generated program must be front-end valid, got {diags:?}\n{}",
            scenario.seed, scenario.source
        ),
    }
}

/// Byte-for-byte comparison of everything the value plane observes.
fn assert_bit_identical(
    seed: u64,
    what: &str,
    base: (
        &oil::rt::ValueTrace,
        &[oil::rt::SinkStream],
        &[(String, u64)],
    ),
    metered: (
        &oil::rt::ValueTrace,
        &[oil::rt::SinkStream],
        &[(String, u64)],
    ),
) {
    if let Some(d) = base.0.first_divergence(metered.0) {
        panic!("seed {seed}: {what}: metrics changed a value stream: {d}");
    }
    assert_eq!(
        base.2, metered.2,
        "seed {seed}: {what}: metrics changed firing counts"
    );
    assert_eq!(base.1.len(), metered.1.len(), "seed {seed}: {what}: sinks");
    for (a, b) in base.1.iter().zip(metered.1) {
        assert_eq!(
            a.consumed, b.consumed,
            "seed {seed}: {what}: sink `{}` consumed",
            a.name
        );
        assert_eq!(
            a.values, b.values,
            "seed {seed}: {what}: sink `{}` samples",
            a.name
        );
    }
}

/// The untampered corpus must never trip the oracle — but wall-clock rate
/// claims only bind when the run actually beat real time (an overloaded
/// host genuinely is drift, just not the kind this test injects).
fn assert_ok_verdict(seed: u64, what: &str, m: &oil::rt::MetricsReport, wall_s: f64) {
    if wall_s > HORIZON_S {
        return;
    }
    assert_eq!(
        m.verdict,
        DriftVerdict::Ok,
        "seed {seed}: {what}: drift oracle fired on an untampered run \
         (wall {wall_s:.6}s < virtual {HORIZON_S}s): {:?}",
        m.verdict
    );
}

#[test]
fn metered_runs_are_bit_identical_to_unmetered_on_all_engines() {
    let metrics = Some(MetricsConfig::default());
    let mut accepted = 0usize;
    for seed in 0..24u64 {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        accepted += 1;
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        for &threads in &WORKERS {
            let run_calendar = |metrics: Option<MetricsConfig>| {
                execute(
                    &graph,
                    &KernelLibrary::new(),
                    picos(HORIZON_S),
                    &RtConfig {
                        threads,
                        warmup_ticks: 64,
                        record_traces: true,
                        record_values: true,
                        metrics,
                        ..RtConfig::default()
                    },
                )
            };
            let base = run_calendar(None);
            let metered = run_calendar(metrics);
            assert!(base.metrics.is_none(), "unmetered run grew a report");
            let m = metered.metrics.as_ref().expect("metered run lost report");
            assert!(m.firings > 0, "seed {seed}: calendar recorded nothing");
            assert_ok_verdict(
                seed,
                &format!("calendar@{threads}"),
                m,
                metered.wall.as_secs_f64(),
            );
            assert_eq!(
                base.trace, metered.trace,
                "seed {seed}: calendar@{threads}: metrics changed the token trace"
            );
            assert_bit_identical(
                seed,
                &format!("calendar@{threads}"),
                (&base.values, &base.sinks, &base.node_firings),
                (&metered.values, &metered.sinks, &metered.node_firings),
            );

            let run_selftimed = |metrics: Option<MetricsConfig>| {
                execute_selftimed(
                    &graph,
                    &plan,
                    &KernelLibrary::new(),
                    picos(HORIZON_S),
                    &SelfTimedConfig {
                        threads,
                        warmup_samples: 4,
                        metrics,
                        ..SelfTimedConfig::default()
                    },
                )
            };
            let base = run_selftimed(None);
            let metered = run_selftimed(metrics);
            let m = metered.metrics.as_ref().expect("metered run lost report");
            assert_ok_verdict(
                seed,
                &format!("selftimed@{threads}"),
                m,
                metered.wall.as_secs_f64(),
            );
            assert_bit_identical(
                seed,
                &format!("selftimed@{threads}"),
                (&base.values, &base.sinks, &base.node_firings),
                (&metered.values, &metered.sinks, &metered.node_firings),
            );

            let schedule = match synthesize(&graph, &plan, threads, &SynthesisConfig::from_env()) {
                Ok(s) => s,
                Err(ScheduleError::NonUniformCluster { .. }) => continue,
                Err(e) => panic!("seed {seed}: synthesis at {threads}: {e}"),
            };
            let run_static = |metrics: Option<MetricsConfig>| {
                execute_staticsched(
                    &graph,
                    &schedule,
                    &KernelLibrary::new(),
                    picos(HORIZON_S),
                    &StaticConfig {
                        record_values: true,
                        warmup_samples: 4,
                        metrics,
                        ..StaticConfig::default()
                    },
                )
            };
            let base = run_static(None);
            let metered = run_static(metrics);
            let m = metered.metrics.as_ref().expect("metered run lost report");
            assert_ok_verdict(
                seed,
                &format!("staticsched@{threads}"),
                m,
                metered.wall.as_secs_f64(),
            );
            assert_bit_identical(
                seed,
                &format!("staticsched@{threads}"),
                (&base.values, &base.sinks, &base.node_firings),
                (&metered.values, &metered.sinks, &metered.node_firings),
            );
        }
    }
    assert!(
        accepted >= MIN_ACCEPTED,
        "corpus too thin: only {accepted} of 24 seeds compiled"
    );
}

// ---------------------------------------------------------------------------
// Cost-model steering.
// ---------------------------------------------------------------------------

/// Four equal-declared-cost stages in a row: declared balancing has no
/// reason to isolate any one of them.
const CHAIN: &str = r#"
    mod seq A0(int a, out int b){ loop{ f0(a, out b); } while(1); }
    mod seq A1(int a, out int b){ loop{ f1(a, out b); } while(1); }
    mod seq A2(int a, out int b){ loop{ f2(a, out b); } while(1); }
    mod seq A3(int a, out int b){ loop{ f3(a, out b); } while(1); }
    mod par Top(){
        fifo int m0, m1, m2;
        source int x = src() @ 8 kHz;
        sink int y = snk() @ 8 kHz;
        A0(x, out m0) || A1(m0, out m1) || A2(m1, out m2) || A3(m2, out y)
    }
"#;

fn chain_registry() -> FunctionRegistry {
    let mut r = FunctionRegistry::new();
    for f in ["f0", "f1", "f2", "f3"] {
        r.register(FunctionSignature::pure(f, 1e-5));
    }
    r.register(FunctionSignature::pure("src", 1e-7));
    r.register(FunctionSignature::pure("snk", 1e-7));
    r
}

/// One kernel measured 500x more expensive than its equally-declared
/// peers; everything else cheap and uniform.
fn skewed_model() -> KernelCostModel {
    let mut model = KernelCostModel::new("test-host");
    let entry = |ns: f64| KernelCost {
        ns_per_firing: ns,
        burst: 64,
        samples: 9,
    };
    model.insert("f0", entry(50_000.0));
    for f in ["f1", "f2", "f3"] {
        model.insert(f, entry(100.0));
    }
    model
}

#[test]
fn skewed_cost_model_shifts_the_partition_and_never_the_values() {
    let compiled = compile(CHAIN, &chain_registry(), &CompilerOptions::default())
        .expect("chain program compiles");
    let graph = rtgraph::lower(&compiled);
    let plan = rtgraph::plan(&graph);
    let workers = 2usize;

    let declared = synthesize(&graph, &plan, workers, &SynthesisConfig::default())
        .expect("declared-cost synthesis");
    let model = skewed_model();
    let measured = synthesize(
        &graph,
        &plan,
        workers,
        &SynthesisConfig {
            cost_model: Some(model.clone()),
            ..SynthesisConfig::default()
        },
    )
    .expect("measured-cost synthesis");

    // Provenance is recorded — and excluded from the structural digest.
    assert_eq!(declared.cost_model_hash, None);
    assert_eq!(measured.cost_model_hash, Some(model.fingerprint()));
    assert_eq!(measured.predicted_utilization.len(), workers);
    assert!(
        measured.predicted_utilization.iter().all(|u| *u > 0.0),
        "every worker should carry some predicted load: {:?}",
        measured.predicted_utilization
    );

    // The observation moved at least one unit to a different worker.
    let placement = |s: &oil::compiler::schedule::StaticSchedule| -> Vec<usize> {
        s.units.iter().map(|u| u.worker).collect()
    };
    assert_ne!(
        placement(&declared),
        placement(&measured),
        "a 500x skewed kernel cost must move the partition"
    );

    // …but never correctness: the moved schedule re-validates, and both
    // schedules stream bit-identical values.
    measured.validate(&graph).expect("measured-cost schedule");
    let run = |s| {
        execute_staticsched(
            &graph,
            s,
            &KernelLibrary::new(),
            picos(HORIZON_S),
            &StaticConfig {
                record_values: true,
                warmup_samples: 4,
                ..StaticConfig::default()
            },
        )
    };
    let a = run(&declared);
    let b = run(&measured);
    assert_bit_identical(
        0,
        "declared vs measured partition",
        (&a.values, &a.sinks, &a.node_firings),
        (&b.values, &b.sinks, &b.node_firings),
    );
}

#[test]
fn golden_digests_are_untouched_without_a_cost_model() {
    // `SynthesisConfig::from_env()` only grows a cost model when
    // OIL_COST_MODEL is set; with `cost_model: None` the measured-cost
    // path must be byte-for-byte the declared-cost path — the golden
    // corpus (tests/data/schedule_corpus.txt) relies on it.
    let compiled = compile(CHAIN, &chain_registry(), &CompilerOptions::default())
        .expect("chain program compiles");
    let graph = rtgraph::lower(&compiled);
    let plan = rtgraph::plan(&graph);
    for workers in [1usize, 2, 4] {
        let a = synthesize(&graph, &plan, workers, &SynthesisConfig::default())
            .expect("default synthesis");
        let b = synthesize(
            &graph,
            &plan,
            workers,
            &SynthesisConfig {
                cost_model: None,
                ..SynthesisConfig::default()
            },
        )
        .expect("explicit no-model synthesis");
        assert_eq!(
            a.digest(),
            b.digest(),
            "workers={workers}: absent cost model changed a digest"
        );
        assert_eq!(a.cost_model_hash, None);
    }
}

// ---------------------------------------------------------------------------
// Detection latency: injected slowdown → Violated within one window.
// ---------------------------------------------------------------------------

const DRIFT_PROGRAM: &str = r#"
    mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
    mod par Top(){
        source int x = src() @ 100 kHz;
        sink int y = snk() @ 100 kHz;
        W(x, out y)
    }
"#;

fn drift_registry() -> FunctionRegistry {
    let mut r = FunctionRegistry::new();
    r.register(FunctionSignature::pure("f", 1e-6));
    r.register(FunctionSignature::pure("src", 1e-7));
    r.register(FunctionSignature::pure("snk", 1e-7));
    r
}

/// A kernel that burns at least `micros` of wall clock per firing and
/// passes its input through.
fn busy_kernel(micros: u64) -> Kernel {
    Kernel::Custom(Box::new(move |inputs, out_len| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < std::time::Duration::from_micros(micros) {
            std::hint::spin_loop();
        }
        vec![inputs.first().copied().unwrap_or(0.0); out_len]
    }))
}

#[test]
fn drift_detector_flags_injected_slowdown_within_one_window() {
    let compiled = compile(
        DRIFT_PROGRAM,
        &drift_registry(),
        &CompilerOptions::default(),
    )
    .expect("drift program compiles");
    let graph = rtgraph::lower(&compiled);
    let plan = rtgraph::plan(&graph);
    let metrics = MetricsConfig {
        window: 128,
        ..MetricsConfig::default()
    };

    // The sink is predicted at 100 kHz; a kernel pinned at ≥50 µs/firing
    // caps the observed rate at ≤20 kHz — a 5x slowdown.
    let mut slow = KernelLibrary::new();
    slow.register("f", Box::new(|| busy_kernel(50)));
    let report = execute_selftimed(
        &graph,
        &plan,
        &slow,
        picos(0.01),
        &SelfTimedConfig {
            threads: 1,
            warmup_samples: 4,
            metrics: Some(metrics),
            ..SelfTimedConfig::default()
        },
    );
    let m = report.metrics.expect("metrics were enabled");
    match &m.verdict {
        DriftVerdict::Violated {
            window,
            observed_hz,
            predicted_hz,
        } => {
            assert_eq!(
                *window, 0,
                "the slowdown is constant from the first sample, so the \
                 FIRST closed window must already violate"
            );
            assert!(
                observed_hz < predicted_hz,
                "violation must quote observed {observed_hz} < predicted {predicted_hz}"
            );
        }
        other => panic!(
            "a 5x kernel slowdown must be Violated within one window, got {other:?}\n{}",
            m.summary_line()
        ),
    }

    // Control: the same program with its normal (fast) kernels and the
    // same small window stays clean when it beats real time.
    let report = execute_selftimed(
        &graph,
        &plan,
        &KernelLibrary::new(),
        picos(0.01),
        &SelfTimedConfig {
            threads: 1,
            warmup_samples: 4,
            metrics: Some(metrics),
            ..SelfTimedConfig::default()
        },
    );
    let m = report.metrics.expect("metrics were enabled");
    if report.wall.as_secs_f64() <= 0.01 {
        assert!(
            !matches!(m.verdict, DriftVerdict::Violated { .. }),
            "untampered control run must not violate: {}",
            m.summary_line()
        );
    }
}
