//! Differential verification of CTA against the exact baselines on randomly
//! generated workloads.
//!
//! The paper's claim — polynomial-time CTA analyses agree with the
//! exact-but-exponential dataflow analyses — is checked here on hundreds of
//! seeded random instances per run (`oil-gen` generates them; see its crate
//! docs for the class/oracle pairing):
//!
//! * **rings** — CTA's exact maximal rate `==` the self-timed state-space
//!   period `==` the exact HSDF maximum cycle ratio, bit for bit, and all
//!   three deadlock verdicts coincide;
//! * **multi-rate topologies** — CTA's consistency verdict `==` the balance
//!   equations' solvability, and the accepted rate vectors are exactly
//!   proportional to the repetition vector;
//! * **pairs** — the two exponential baselines (state space, exact HSDF
//!   ratio) agree with each other exactly, including deadlock verdicts;
//! * **programs** — every generated OIL program the compiler accepts
//!   simulates in `oil-sim` with the CTA-sized buffers without a single
//!   deadline miss, buffer overflow or latency violation; deliberately
//!   ill-formed programs are rejected with diagnostics, never panics.
//!
//! Exact baselines that exceed their size budget on an adversarial instance
//! are *skipped and counted*, not failed — the budget guards are themselves
//! under test (they must return `SdfError::BudgetExceeded`, not panic).
//!
//! Every failure message embeds the reproducing seed: rerun with
//! `<Scenario>::generate(seed)` (all generation is a pure function of the
//! seed — same instance on every machine).

use oil::cta::consistency::ConsistencyError;
use oil::dataflow::hsdf::{ExactCycleRatio, HsdfGraph};
use oil::dataflow::index::{Idx, PortId};
use oil::dataflow::sdf::SdfError;
use oil::dataflow::statespace::analyze_self_timed_budgeted;
use oil::dataflow::Rational;
use oil::gen::{IllFormedProgram, MultiRateScenario, PairScenario, ProgramScenario, RingScenario};

/// Instance counts per class; the sum (> 300) is the per-run sweep size.
const RING_SEEDS: u64 = 120;
const MULTIRATE_SEEDS: u64 = 100;
const PAIR_SEEDS: u64 = 60;
const PROGRAM_SEEDS: u64 = 24;
const ILLFORMED_SEEDS: u64 = 24;

/// Budgets for the exponential baselines: far beyond anything the generator
/// ranges produce, so a budget hit on these classes would itself be a bug —
/// except where a test deliberately probes adversarial instances.
const MAX_ITERATIONS: u64 = 200_000;
const MAX_STATES: usize = 1_000_000;

#[test]
fn rings_cta_maximal_rates_match_state_space_and_hsdf_exactly() {
    let (mut live, mut dead) = (0u32, 0u32);
    for seed in 0..RING_SEEDS {
        let ring = RingScenario::generate(seed);
        let sdf = ring.sdf();
        let cta = ring.cta();

        match analyze_self_timed_budgeted(&sdf, MAX_ITERATIONS, MAX_STATES) {
            Ok(exact) => {
                live += 1;
                let period = exact.period_exact().unwrap_or_else(|| {
                    panic!("seed {seed}: converged analysis must expose an exact period")
                });

                // 1. The state-space period equals the closed form.
                assert_eq!(
                    Some(period),
                    ring.predicted_period(),
                    "seed {seed}: state-space period {period} differs from closed form {:?}",
                    ring.predicted_period()
                );

                // 2. CTA's exact maximal rate is the reciprocal, bit for bit,
                //    and uniform across the ring (all γ = 1).
                let rates = cta.maximal_rates().unwrap_or_else(|e| {
                    panic!("seed {seed}: exact analysis converged but CTA rejected: {e}")
                });
                for i in 0..ring.len() {
                    assert_eq!(
                        rates[ring.cta_port(i)],
                        period.recip(),
                        "seed {seed}: CTA rate at port {i} disagrees with the exact period"
                    );
                }
                assert!(
                    cta.consistency_at_maximal_rates().is_ok(),
                    "seed {seed}: CTA must accept its own maximal rates"
                );

                // 3. The exact HSDF maximum cycle ratio is the same period.
                let h = HsdfGraph::expand(&sdf)
                    .unwrap_or_else(|e| panic!("seed {seed}: ring expansion failed: {e}"));
                let durations = ring.hsdf_durations_exact();
                match h.maximum_cycle_ratio_exact_with(&durations) {
                    Some(ExactCycleRatio::Ratio(mcm)) => assert_eq!(
                        mcm, period,
                        "seed {seed}: exact HSDF ratio {mcm} vs state-space period {period}"
                    ),
                    other => {
                        panic!("seed {seed}: ring must have a finite cycle ratio, got {other:?}")
                    }
                }
            }
            Err(SdfError::Deadlock { .. }) => {
                dead += 1;
                assert_eq!(
                    ring.total_tokens(),
                    0,
                    "seed {seed}: only token-free rings may deadlock"
                );
                // CTA agrees: no positive rate satisfies the cycle, and the
                // witness cycle is rate-independent (ε-only).
                match cta.maximal_rates() {
                    Err(ConsistencyError::PositiveCycle { .. }) => {}
                    other => panic!("seed {seed}: CTA verdict {other:?} disagrees with deadlock"),
                }
            }
            Err(other) => panic!("seed {seed}: unexpected baseline failure: {other}"),
        }
    }
    // The generator must cover both classes in every sweep.
    assert!(live >= 80, "only {live} live rings of {RING_SEEDS}");
    assert!(dead >= 5, "only {dead} deadlocked rings of {RING_SEEDS}");
}

#[test]
fn multirate_consistency_verdicts_and_rate_vectors_agree_exactly() {
    const ANCHOR_HZ: u64 = 1000;
    let (mut consistent, mut inconsistent) = (0u32, 0u32);
    for seed in 0..MULTIRATE_SEEDS {
        let scenario = MultiRateScenario::generate(seed);
        let sdf = scenario.sdf();
        let cta = scenario.cta(ANCHOR_HZ);

        match sdf.repetition_vector() {
            Ok(q) => {
                consistent += 1;
                let result = cta.check_consistency().unwrap_or_else(|e| {
                    panic!("seed {seed}: balance equations solvable but CTA rejected: {e}")
                });
                for (i, expected) in MultiRateScenario::expected_rates(&q, ANCHOR_HZ).enumerate() {
                    assert_eq!(
                        result.rates[PortId::new(i)],
                        expected,
                        "seed {seed}: actor {i} rate differs from repetition vector"
                    );
                }
                if scenario.forced_q.is_some() {
                    // Forced instances must land in this arm by construction.
                } else {
                    // Free-form instances that happen to balance are fine too.
                }
            }
            Err(SdfError::Inconsistent { .. }) => {
                inconsistent += 1;
                assert!(
                    scenario.forced_q.is_none(),
                    "seed {seed}: forced-consistent instance judged inconsistent"
                );
                match cta.check_consistency() {
                    Err(ConsistencyError::RateConflict { .. })
                    | Err(ConsistencyError::RequiredRateConflict { .. }) => {}
                    other => panic!("seed {seed}: SDF inconsistent but CTA said {other:?}"),
                }
            }
            Err(other) => panic!("seed {seed}: unexpected verdict {other}"),
        }
    }
    assert!(
        consistent >= 40 && inconsistent >= 10,
        "sweep must cover both verdicts (got {consistent} consistent, {inconsistent} inconsistent)"
    );
}

#[test]
fn pairs_state_space_and_exact_hsdf_baselines_agree_exactly() {
    let (mut live, mut dead) = (0u32, 0u32);
    for seed in 0..PAIR_SEEDS {
        let pair = PairScenario::generate(seed);
        let sdf = pair.sdf(pair.capacity);

        let h = HsdfGraph::expand(&sdf)
            .unwrap_or_else(|e| panic!("seed {seed}: pair expansion failed: {e}"));
        let actor_durations = pair.actor_durations_exact();
        let durations: Vec<Rational> = h
            .firings
            .iter()
            .map(|f| actor_durations[f.actor.index()])
            .collect();
        let ratio = h
            .maximum_cycle_ratio_exact_with(&durations)
            .unwrap_or_else(|| panic!("seed {seed}: exact cycle ratio exhausted its budget"));

        match analyze_self_timed_budgeted(&sdf, MAX_ITERATIONS, MAX_STATES) {
            Ok(exact) => {
                live += 1;
                let period = exact.period_exact().unwrap_or_else(|| {
                    panic!("seed {seed}: converged analysis must expose an exact period")
                });
                match ratio {
                    ExactCycleRatio::Ratio(mcm) => assert_eq!(
                        mcm, period,
                        "seed {seed}: exact HSDF ratio {mcm} vs state-space period {period} \
                         (p={}, c={}, capacity={})",
                        pair.p, pair.c, pair.capacity
                    ),
                    other => panic!(
                        "seed {seed}: self-timed execution converged but HSDF says {other:?}"
                    ),
                }
            }
            Err(SdfError::Deadlock { .. }) => {
                dead += 1;
                assert_eq!(
                    ratio,
                    ExactCycleRatio::Infeasible,
                    "seed {seed}: deadlock verdicts disagree (p={}, c={}, capacity={})",
                    pair.p,
                    pair.c,
                    pair.capacity
                );
            }
            Err(other) => panic!("seed {seed}: unexpected baseline failure: {other}"),
        }
    }
    assert!(live >= 30, "only {live} live pairs of {PAIR_SEEDS}");
    assert!(dead >= 5, "only {dead} deadlocked pairs of {PAIR_SEEDS}");
}

#[test]
fn accepted_generated_programs_simulate_cleanly_with_cta_sized_buffers() {
    use oil::compiler::{compile, CompileError, CompilerOptions};
    use oil::sim::{build_simulation, picos, SimulationConfig};

    let (mut accepted, mut rejected) = (0u32, 0u32);
    for seed in 0..PROGRAM_SEEDS {
        let scenario = ProgramScenario::generate(seed);
        let opts = CompilerOptions::default();
        match compile(&scenario.source, &scenario.registry, &opts) {
            Ok(compiled) => {
                accepted += 1;
                // Determinism: the exact-rational pipeline leaves no room for
                // drift between identical compilations.
                let again = compile(&scenario.source, &scenario.registry, &opts)
                    .unwrap_or_else(|e| panic!("seed {seed}: recompilation failed: {e}"));
                assert_eq!(
                    again.consistency, compiled.consistency,
                    "seed {seed}: consistency result drifted between compilations"
                );

                // The paper's core guarantee: accepted ⇒ executes cleanly
                // with the analysed buffer capacities. The warm-up must cover
                // the pipeline fill: with rate up-conversion the sink ticks
                // many times before the slowest upstream stage has produced
                // its first burst, and those ticks are not misses.
                let slowest_hz = scenario
                    .stages
                    .iter()
                    .map(|s| s.firing_hz)
                    .chain([scenario.source_hz])
                    .min()
                    .unwrap_or(1);
                let warmup_ticks = 4 + scenario.sink_hz.div_ceil(slowest_hz) * 6;
                let mut net = build_simulation(&compiled);
                let metrics = net.run(
                    picos(0.25),
                    &SimulationConfig {
                        cores: 0,
                        warmup_ticks,
                    },
                );
                assert!(
                    metrics.meets_real_time_constraints(),
                    "seed {seed}: accepted program missed deadlines or overflowed:\n\
                     {metrics:?}\nsource:\n{}",
                    scenario.source
                );
                for (name, cap, occ) in &metrics.buffers {
                    assert!(
                        occ <= cap,
                        "seed {seed}: buffer {name} exceeded its analysed capacity"
                    );
                }
                if let Some(ms) = scenario.latency_ms {
                    let measured = metrics.sink_max_latency("y").unwrap_or(0.0);
                    assert!(
                        measured <= ms as f64 * 1e-3 + 1e-9,
                        "seed {seed}: measured latency {measured}s exceeds the {ms} ms bound"
                    );
                }
            }
            // Tight latency bounds are a legitimate reason to reject; the
            // front end must never be the one rejecting generated programs.
            Err(CompileError::Temporal(_)) => rejected += 1,
            Err(CompileError::Frontend(diags)) => panic!(
                "seed {seed}: generated program must be front-end valid, got {diags:?}\n{}",
                scenario.source
            ),
        }
    }
    assert!(
        accepted >= PROGRAM_SEEDS as u32 * 3 / 4,
        "most generated programs must be accepted ({accepted} accepted, {rejected} rejected)"
    );
}

#[test]
fn ill_formed_generated_programs_are_rejected_with_diagnostics() {
    use oil::compiler::{compile, CompilerOptions};

    for seed in 0..ILLFORMED_SEEDS {
        let bad = IllFormedProgram::generate(seed);
        let result = compile(&bad.source, &bad.registry(), &CompilerOptions::default());
        assert!(
            result.is_err(),
            "seed {seed}: defect {:?} must be rejected\n{}",
            bad.defect,
            bad.source
        );
    }
}

#[test]
fn adversarial_rates_hit_budget_guards_not_panics() {
    // Direct adversarial probes (beyond the generator's ranges): the exact
    // baselines must fail *gracefully* so sweeps can skip-and-log.
    use oil::dataflow::SdfGraph;

    // Exponential repetition vector: 100^25 overflows every budget.
    let mut chain = SdfGraph::new();
    let mut prev = chain.add_actor("a0", 1e-6);
    for i in 0..25 {
        let next = chain.add_actor(format!("a{}", i + 1), 1e-6);
        chain.add_edge(prev, next, 100, 1, 0);
        prev = next;
    }
    assert!(matches!(
        chain.repetition_vector(),
        Err(SdfError::BudgetExceeded { .. })
    ));
    assert!(matches!(
        HsdfGraph::expand(&chain),
        Err(SdfError::BudgetExceeded { .. })
    ));
    assert!(matches!(
        analyze_self_timed_budgeted(&chain, MAX_ITERATIONS, MAX_STATES),
        Err(SdfError::BudgetExceeded { .. })
    ));

    // A feasible but large-rate cycle: the HSDF node budget refuses the
    // expansion while the (polynomial) repetition vector still succeeds.
    let mut wide = SdfGraph::new();
    let a = wide.add_actor("a", 1e-6);
    let b = wide.add_actor("b", 1e-6);
    wide.add_edge(a, b, 2_000_000, 1, 0);
    wide.add_edge(b, a, 1, 2_000_000, 4_000_000);
    assert!(wide.repetition_vector().is_ok());
    assert!(matches!(
        HsdfGraph::expand(&wide),
        Err(SdfError::BudgetExceeded { .. })
    ));
}
