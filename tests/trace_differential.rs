//! Tracing must observe, never perturb: differential verification of
//! `oil::rt::trace` against untraced runs.
//!
//! Three oracles:
//!
//! 1. **Bit-identity** — for a corpus of generated programs, every engine
//!    at every worker count produces byte-for-byte identical value
//!    streams, sink samples and firing counts with tracing on and off.
//!    Tracing enabled may *record* more; it must never *change* anything.
//! 2. **Chrome schema** — the Perfetto export is well-formed JSON (parsed
//!    by a hand-rolled reader, no serde) whose events all carry
//!    `pid`/`tid`/`ts` (and `dur` for `"X"` spans) and whose spans form a
//!    proper stack per track: two spans on one track are either disjoint
//!    or one contains the other. Perfetto renders overlapping non-nested
//!    spans misleadingly, so the exporter owes this invariant.
//! 3. **Capacity** — observed ring high-water marks stay within the
//!    CTA-proven capacities on the blocking engines (self-timed and
//!    static-order; the calendar engine's rings are admission-checked
//!    against the same bound by the trace oracle already). This is the
//!    paper's buffer-sizing theorem checked *at runtime*, per run.

use oil::compiler::schedule::{synthesize, ScheduleError, SynthesisConfig};
use oil::compiler::{compile, rtgraph, CompileError, CompilerOptions};
use oil::gen::ProgramScenario;
use oil::rt::{
    execute, execute_selftimed, execute_staticsched, KernelLibrary, RtConfig, SelfTimedConfig,
    StaticConfig, TraceReport,
};
use oil::sim::picos;

const WORKERS: [usize; 3] = [1, 2, 4];
/// Seeds swept; the corpus tests demand at least this many compile.
const MIN_ACCEPTED: usize = 8;

fn compile_scenario(scenario: &ProgramScenario) -> Option<oil::compiler::CompiledProgram> {
    match compile(
        &scenario.source,
        &scenario.registry,
        &CompilerOptions::default(),
    ) {
        Ok(compiled) => Some(compiled),
        Err(CompileError::Temporal(_)) => None,
        Err(CompileError::Frontend(diags)) => panic!(
            "seed {}: generated program must be front-end valid, got {diags:?}\n{}",
            scenario.seed, scenario.source
        ),
    }
}

/// A saturated event buffer silently truncates the evidence every other
/// oracle relies on: the corpus runs are sized well under the per-worker
/// capacity, so a single dropped event is a bug, not a tuning issue.
fn assert_no_drops(seed: u64, what: &str, tr: Option<&TraceReport>) {
    let tr = tr.expect("tracing was enabled");
    assert_eq!(
        tr.dropped, 0,
        "seed {seed}: {what}: traced run dropped {} event(s) — the trace \
         is no longer evidence",
        tr.dropped
    );
}

/// Byte-for-byte comparison of everything the value plane observes.
fn assert_bit_identical(
    seed: u64,
    what: &str,
    base: (
        &oil::rt::ValueTrace,
        &[oil::rt::SinkStream],
        &[(String, u64)],
    ),
    traced: (
        &oil::rt::ValueTrace,
        &[oil::rt::SinkStream],
        &[(String, u64)],
    ),
) {
    if let Some(d) = base.0.first_divergence(traced.0) {
        panic!("seed {seed}: {what}: tracing changed a value stream: {d}");
    }
    assert_eq!(
        base.2, traced.2,
        "seed {seed}: {what}: tracing changed firing counts"
    );
    assert_eq!(
        base.1.len(),
        traced.1.len(),
        "seed {seed}: {what}: sink count"
    );
    for (a, b) in base.1.iter().zip(traced.1) {
        assert_eq!(
            a.consumed, b.consumed,
            "seed {seed}: {what}: sink `{}` consumed",
            a.name
        );
        assert_eq!(
            a.values, b.values,
            "seed {seed}: {what}: sink `{}` samples",
            a.name
        );
    }
}

#[test]
fn traced_runs_are_bit_identical_to_untraced_on_all_engines() {
    let mut accepted = 0usize;
    for seed in 0..24u64 {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        accepted += 1;
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        for &threads in &WORKERS {
            // Calendar: the full execution trace is part of the contract.
            let run_calendar = |trace: bool| {
                execute(
                    &graph,
                    &KernelLibrary::new(),
                    picos(0.05),
                    &RtConfig {
                        threads,
                        warmup_ticks: 64,
                        record_traces: true,
                        record_values: true,
                        trace,
                        ..RtConfig::default()
                    },
                )
            };
            let base = run_calendar(false);
            let traced = run_calendar(true);
            assert!(base.trace_report.is_none(), "untraced run grew a report");
            assert!(traced.trace_report.is_some(), "traced run lost its report");
            assert_no_drops(
                seed,
                &format!("calendar@{threads}"),
                traced.trace_report.as_ref(),
            );
            assert_eq!(
                base.trace, traced.trace,
                "seed {seed}: calendar@{threads}: tracing changed the token trace"
            );
            assert_bit_identical(
                seed,
                &format!("calendar@{threads}"),
                (&base.values, &base.sinks, &base.node_firings),
                (&traced.values, &traced.sinks, &traced.node_firings),
            );

            // Self-timed: schedule-dependent interleavings, schedule-
            // invariant values — tracing must stay on the invariant side.
            let run_selftimed = |trace: bool| {
                execute_selftimed(
                    &graph,
                    &plan,
                    &KernelLibrary::new(),
                    picos(0.05),
                    &SelfTimedConfig {
                        threads,
                        warmup_samples: 4,
                        trace,
                        ..SelfTimedConfig::default()
                    },
                )
            };
            let base = run_selftimed(false);
            let traced = run_selftimed(true);
            assert!(traced.trace_report.is_some());
            assert_no_drops(
                seed,
                &format!("selftimed@{threads}"),
                traced.trace_report.as_ref(),
            );
            assert_bit_identical(
                seed,
                &format!("selftimed@{threads}"),
                (&base.values, &base.sinks, &base.node_firings),
                (&traced.values, &traced.sinks, &traced.node_firings),
            );

            // Static-order, when the graph admits a schedule.
            let schedule = match synthesize(&graph, &plan, threads, &SynthesisConfig::from_env()) {
                Ok(s) => s,
                Err(ScheduleError::NonUniformCluster { .. }) => continue,
                Err(e) => panic!("seed {seed}: synthesis at {threads}: {e}"),
            };
            let run_static = |trace: bool| {
                execute_staticsched(
                    &graph,
                    &schedule,
                    &KernelLibrary::new(),
                    picos(0.05),
                    &StaticConfig {
                        record_values: true,
                        warmup_samples: 4,
                        trace,
                        ..StaticConfig::default()
                    },
                )
            };
            let base = run_static(false);
            let traced = run_static(true);
            assert!(traced.trace_report.is_some());
            assert_no_drops(
                seed,
                &format!("staticsched@{threads}"),
                traced.trace_report.as_ref(),
            );
            assert_bit_identical(
                seed,
                &format!("staticsched@{threads}"),
                (&base.values, &base.sinks, &base.node_firings),
                (&traced.values, &traced.sinks, &traced.node_firings),
            );
        }
    }
    assert!(
        accepted >= MIN_ACCEPTED,
        "corpus too thin: only {accepted} of 24 seeds compiled"
    );
}

#[test]
fn ring_highwater_stays_within_cta_capacity_on_the_corpus() {
    let mut accepted = 0usize;
    for seed in 0..24u64 {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        accepted += 1;
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        for &threads in &WORKERS {
            let report = execute_selftimed(
                &graph,
                &plan,
                &KernelLibrary::new(),
                picos(0.05),
                &SelfTimedConfig {
                    threads,
                    warmup_samples: 4,
                    trace: true,
                    ..SelfTimedConfig::default()
                },
            );
            assert_rings_within(seed, "selftimed", threads, report.trace_report.as_ref());

            let schedule = match synthesize(&graph, &plan, threads, &SynthesisConfig::from_env()) {
                Ok(s) => s,
                Err(ScheduleError::NonUniformCluster { .. }) => continue,
                Err(e) => panic!("seed {seed}: synthesis at {threads}: {e}"),
            };
            let report = execute_staticsched(
                &graph,
                &schedule,
                &KernelLibrary::new(),
                picos(0.05),
                &StaticConfig {
                    record_values: false,
                    warmup_samples: 4,
                    trace: true,
                    ..StaticConfig::default()
                },
            );
            assert_rings_within(seed, "staticsched", threads, report.trace_report.as_ref());
        }
    }
    assert!(
        accepted >= MIN_ACCEPTED,
        "corpus too thin: only {accepted} of 24 seeds compiled"
    );
}

fn assert_rings_within(seed: u64, engine: &str, threads: usize, tr: Option<&TraceReport>) {
    let tr = tr.expect("tracing was enabled");
    if tr.rings_within_capacity() {
        return;
    }
    let over: Vec<String> = tr
        .rings
        .iter()
        .filter(|r| r.highwater > r.capacity)
        .map(|r| {
            format!(
                "`{}` highwater {} > capacity {}",
                r.name, r.highwater, r.capacity
            )
        })
        .collect();
    panic!(
        "seed {seed}: {engine}@{threads}: observed ring occupancy exceeds the \
         CTA-proven bound:\n  {}",
        over.join("\n  ")
    );
}

// ---------------------------------------------------------------------------
// Chrome trace-event schema: a minimal hand-rolled JSON reader (the runtime
// deliberately has no serde) and a per-track span-stack validator.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|c| *c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(c) => out.push(*c as char),
                        None => return Err("unterminated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // The exporter only emits ASCII names; pass bytes
                    // through so a future UTF-8 name still round-trips.
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at byte {}", self.pos)),
            }
        }
    }
}

/// Timestamps arrive as fractional microseconds with nanosecond precision
/// (`123.456`); convert back to integer nanoseconds for exact comparisons.
fn to_ns(us: f64) -> u64 {
    (us * 1000.0).round() as u64
}

fn validate_chrome_trace(label: &str, raw: &str) {
    let root = Parser::parse(raw).unwrap_or_else(|e| panic!("{label}: unparseable JSON: {e}"));
    let events = root
        .get("traceEvents")
        .and_then(|v| match v {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .unwrap_or_else(|| panic!("{label}: missing traceEvents array"));
    assert!(!events.is_empty(), "{label}: empty trace");

    // Per-tid stacks of open (start_ns, end_ns) spans. Events within a tid
    // are exported sorted by (start, -duration), so a simple stack
    // suffices: pop everything that ended before the new span starts, then
    // the new span must fit entirely inside whatever is still open.
    let mut stacks: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
    let mut spans = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{label}: event without ph: {ev:?}"));
        let pid = ev.get("pid").and_then(Json::as_num);
        let tid = ev.get("tid").and_then(Json::as_num);
        assert_eq!(pid, Some(1.0), "{label}: bad pid: {ev:?}");
        let tid = tid.unwrap_or_else(|| panic!("{label}: missing tid: {ev:?}")) as u64;
        match ph {
            "M" => {
                // Thread-name metadata carries no timestamp.
                assert!(
                    ev.get("args").and_then(|a| a.get("name")).is_some(),
                    "{label}: metadata without a name: {ev:?}"
                );
            }
            "i" => {
                let ts = ev.get("ts").and_then(Json::as_num);
                assert!(
                    ts.is_some_and(|t| t >= 0.0),
                    "{label}: instant without ts: {ev:?}"
                );
            }
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_num)
                    .unwrap_or_else(|| panic!("{label}: span without ts: {ev:?}"));
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .unwrap_or_else(|| panic!("{label}: span without dur: {ev:?}"));
                assert!(ts >= 0.0 && dur >= 0.0, "{label}: negative span: {ev:?}");
                assert!(
                    ev.get("name").and_then(Json::as_str).is_some(),
                    "{label}: span without a name: {ev:?}"
                );
                let (start, end) = (to_ns(ts), to_ns(ts) + to_ns(dur));
                let stack = stacks.entry(tid).or_default();
                while stack.last().is_some_and(|&(_, open_end)| open_end <= start) {
                    stack.pop();
                }
                if let Some(&(open_start, open_end)) = stack.last() {
                    assert!(
                        start >= open_start && end <= open_end,
                        "{label}: tid {tid}: span [{start}, {end}] ns overlaps but is \
                         not nested in the open span [{open_start}, {open_end}] ns"
                    );
                }
                stack.push((start, end));
                spans += 1;
            }
            other => panic!("{label}: unexpected phase `{other}`: {ev:?}"),
        }
    }
    assert!(spans > 0, "{label}: no spans at all");
}

#[test]
fn chrome_trace_export_is_wellformed_and_properly_nested() {
    let (compiled, _) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);
    let duration = picos(2e-3);

    for &threads in &[1usize, 2] {
        let report = execute(
            &graph,
            &KernelLibrary::pal(),
            duration,
            &RtConfig {
                threads,
                record_values: false,
                trace: true,
                ..RtConfig::default()
            },
        );
        let tr = report.trace_report.expect("tracing was enabled");
        validate_chrome_trace(&format!("calendar@{threads}"), &tr.chrome_trace_json());

        let report = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::pal(),
            duration,
            &SelfTimedConfig {
                threads,
                record_values: false,
                trace: true,
                ..SelfTimedConfig::default()
            },
        );
        let tr = report.trace_report.expect("tracing was enabled");
        validate_chrome_trace(&format!("selftimed@{threads}"), &tr.chrome_trace_json());

        let schedule = synthesize(&graph, &plan, threads, &SynthesisConfig::from_env())
            .expect("the PAL graph is schedulable");
        let report = execute_staticsched(
            &graph,
            &schedule,
            &KernelLibrary::pal(),
            duration,
            &StaticConfig {
                record_values: false,
                warmup_samples: 256,
                trace: true,
                ..StaticConfig::default()
            },
        );
        let tr = report.trace_report.expect("tracing was enabled");
        let raw = tr.chrome_trace_json();
        validate_chrome_trace(&format!("staticsched@{threads}"), &raw);
        // The compiled engine's export also carries the compile-phase
        // track (tid 0) — the one place compiler latency is visible.
        assert!(
            raw.contains("\"cat\":\"compile\""),
            "staticsched@{threads}: compile phases missing from the export"
        );
    }
}
