//! Differential verification of **per-mode quasi-static schedules with hot
//! mode switching** — the paper's SDR "user changes channels mid-stream"
//! scenario.
//!
//! `oil-compiler::schedule` admits a non-uniform modal cluster when its
//! token flow is mode-independent (union-advance: disjoint per-arm reads,
//! one shared write list) and synthesizes per-mode schedules whose
//! transitions are proven by exact integer replay across the switch seam
//! for every (mode, mode') pair. `oil-rt` then executes the same dispatch
//! in two unrelated ways — the static-order engine replays compiled firing
//! lists, the self-timed engine fires data-driven — and this harness holds
//! them to bit-identical value streams under adversarial mode scripts:
//! switches at the first and second firing, back-to-back, mid-period
//! (computed from the synthesised repetition count), mid-stream, and far
//! beyond the horizon, at 1/2/4 workers with fusion on and off.
//!
//! The simulator is value-free (it traces token origins, not payloads), so
//! its leg runs on the **collapsed twin**: the modal cluster replaced by
//! one union node with identical token flow ([`collapse_modal`]). The
//! collapsed trace must be bit-identical between the simulator and the
//! calendar engine — which, combined with the in-crate proof that the
//! modal schedule moves exactly the collapsed schedule's per-period token
//! flow, closes the three-engine oracle.
//!
//! Every failure message quotes the reproducing seed
//! (`ModalScenario::generate(seed)`).

use oil::compiler::rtgraph;
use oil::compiler::schedule::{
    collapse_modal, modal_admission, synthesize, synthesize_with, ModeScript, ScheduleError,
    StaticSchedule, SynthesisConfig,
};
use oil::gen::ModalScenario;
use oil::rt::{
    execute, execute_selftimed, execute_selftimed_scripted, execute_staticsched_scripted,
    KernelLibrary, RtConfig, SelfTimedConfig, StaticConfig, StaticReport,
};
use oil::sim::{build_simulation_from_graph, picos, SimulationConfig};

fn stress() -> bool {
    std::env::var_os("OIL_RT_STRESS").is_some()
}

fn modal_seeds() -> u64 {
    if stress() {
        48
    } else {
        24
    }
}

const WORKERS: [usize; 3] = [1, 2, 4];
const DURATION_S: f64 = 0.25;

/// The adversarial scripts plus one switching exactly mid-period, derived
/// from the synthesised schedule's own repetition count.
fn scripts_for(scenario: &ModalScenario, schedule: &StaticSchedule) -> Vec<ModeScript> {
    let mut scripts = scenario.adversarial_scripts();
    let modes = schedule.modes.as_ref().expect("modal schedule");
    let reps = schedule.units[modes.unit as usize].repetitions;
    let last = (scenario.arms - 1) as u32;
    if reps >= 2 {
        // Mid-period: the switch lands strictly inside a replayed period,
        // then switches back inside the next one.
        scripts.push(ModeScript::new(
            0,
            vec![(reps / 2, last), (reps + reps / 2, 0)],
        ));
    }
    scripts
}

fn scripted_static_run(
    graph: &rtgraph::RtGraph,
    schedule: &StaticSchedule,
    script: &ModeScript,
) -> StaticReport {
    execute_staticsched_scripted(
        graph,
        schedule,
        script,
        &KernelLibrary::new(),
        picos(DURATION_S),
        &StaticConfig {
            warmup_samples: 4,
            ..StaticConfig::default()
        },
    )
}

#[test]
fn scripted_static_replay_matches_scripted_selftimed_on_the_modal_corpus() {
    let mut reference_switches_total = 0u64;
    for seed in 0..modal_seeds() {
        let scenario = ModalScenario::generate(seed);
        let graph = &scenario.graph;
        let plan = rtgraph::plan(graph);
        let schedules: Vec<StaticSchedule> = WORKERS
            .iter()
            .map(|&w| {
                synthesize(graph, &plan, w, &SynthesisConfig::from_env()).unwrap_or_else(|e| {
                    panic!("seed {seed}: modal synthesis at {w} workers failed: {e}")
                })
            })
            .collect();
        for script in scripts_for(&scenario, &schedules[0]) {
            let reference = execute_selftimed_scripted(
                graph,
                &plan,
                &KernelLibrary::new(),
                picos(DURATION_S),
                &SelfTimedConfig {
                    threads: 1,
                    warmup_samples: 4,
                    ..SelfTimedConfig::default()
                },
                &script,
            );
            assert!(
                !reference.deadlocked,
                "seed {seed}: scripted self-timed reference deadlocked under {script:?}"
            );
            reference_switches_total += reference.mode_switches;

            let mut baseline: Option<StaticReport> = None;
            for (schedule, &w) in schedules.iter().zip(&WORKERS) {
                let report = scripted_static_run(graph, schedule, &script);
                // Prefix oracle on every buffer: the static replay covers at
                // least the self-timed sample budget, and both engines
                // dispatch the identical scripted arm per firing index.
                if let Some(d) = reference.values.prefix_divergence(&report.values) {
                    panic!(
                        "seed {seed}: scripted self-timed streams are not a prefix of \
                         the static replay at {w} worker(s) under {script:?}: {d}\n\
                         reproduce with ModalScenario::generate({seed})"
                    );
                }
                for (dy, st) in reference.sinks.iter().zip(&report.sinks) {
                    let shared = dy.values.len().min(st.values.len());
                    assert_eq!(
                        dy.values[..shared],
                        st.values[..shared],
                        "seed {seed}: sink `{}` diverges at {w} worker(s) under {script:?}",
                        dy.name
                    );
                }
                // The static replay runs to the end of its covering period,
                // so it can only observe *more* scripted switches, never
                // fewer or different ones.
                assert!(
                    report.mode_switches >= reference.mode_switches,
                    "seed {seed}: static replay lost mode switches at {w} worker(s) \
                     ({} < {}) under {script:?}",
                    report.mode_switches,
                    reference.mode_switches
                );
                match &baseline {
                    None => baseline = Some(report),
                    Some(base) => {
                        if let Some(d) = base.values.first_divergence(&report.values) {
                            panic!(
                                "seed {seed}: static replay differs between {} and {w} \
                                 worker(s) under {script:?}: {d}",
                                base.threads
                            );
                        }
                        assert_eq!(base.node_firings, report.node_firings, "seed {seed}");
                        assert_eq!(base.sources, report.sources, "seed {seed}");
                        assert_eq!(
                            base.mode_switches, report.mode_switches,
                            "seed {seed}: switch count depends on the worker count"
                        );
                        for (a, b) in base.sinks.iter().zip(&report.sinks) {
                            assert_eq!(a.consumed, b.consumed, "seed {seed}");
                            assert_eq!(a.values, b.values, "seed {seed}");
                        }
                    }
                }
            }
        }
    }
    assert!(
        reference_switches_total > 0,
        "no script ever switched inside the horizon — the differential would be vacuous"
    );
}

#[test]
fn fusion_on_and_off_replay_identical_modal_streams() {
    // Modal units are excluded from fusion, but the rest of the graph still
    // fuses; switching mid-stream must not observe the difference.
    for seed in 0..8 {
        let scenario = ModalScenario::generate(seed);
        let graph = &scenario.graph;
        let plan = rtgraph::plan(graph);
        for &w in &WORKERS {
            let fused = synthesize_with(graph, &plan, w, true)
                .unwrap_or_else(|e| panic!("seed {seed}: fused modal synthesis: {e}"));
            let plain = synthesize_with(graph, &plan, w, false)
                .unwrap_or_else(|e| panic!("seed {seed}: unfused modal synthesis: {e}"));
            assert_eq!(fused.period, plain.period, "seed {seed}");
            for script in scripts_for(&scenario, &fused).into_iter().take(4) {
                let a = scripted_static_run(graph, &fused, &script);
                let b = scripted_static_run(graph, &plain, &script);
                if let Some(d) = a.values.first_divergence(&b.values) {
                    panic!(
                        "seed {seed}: fusion changed a modal value stream at {w} \
                         worker(s) under {script:?}: {d}"
                    );
                }
                assert_eq!(a.node_firings, b.node_firings, "seed {seed}");
                assert_eq!(a.mode_switches, b.mode_switches, "seed {seed}");
            }
        }
    }
}

#[test]
fn collapsed_twin_trace_matches_the_simulator() {
    // The simulator traces token origins, not values, so the modal graph
    // itself cannot be its oracle. Its twin with the cluster collapsed to
    // one union node has the *identical per-buffer token flow* (proven by
    // exact integer replay in `oil-compiler`'s unit tests) and is a plain
    // KPN graph: simulator and calendar engine must agree bit for bit.
    for seed in 0..8 {
        let scenario = ModalScenario::generate(seed);
        let plan = rtgraph::plan(&scenario.graph);
        let info = modal_admission(&scenario.graph, &plan)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
            .unwrap_or_else(|| panic!("seed {seed}: no modal cluster"));
        let collapsed = collapse_modal(&scenario.graph, &info);
        let mut net = build_simulation_from_graph(&collapsed);
        let (_, sim_trace) = net.run_traced(picos(0.05), &SimulationConfig::default());
        for threads in [1, 2] {
            let report = execute(
                &collapsed,
                &KernelLibrary::new(),
                picos(0.05),
                &RtConfig {
                    threads,
                    ..RtConfig::default()
                },
            );
            assert_eq!(
                report.trace.first_divergence(&sim_trace),
                None,
                "seed {seed}: collapsed-twin trace diverges from the simulator at \
                 {threads} thread(s)"
            );
        }
    }
}

#[test]
fn transitions_are_admitted_for_every_mode_pair() {
    for seed in 0..modal_seeds() {
        let scenario = ModalScenario::generate(seed);
        let plan = rtgraph::plan(&scenario.graph);
        for &w in &WORKERS {
            let schedule = synthesize(&scenario.graph, &plan, w, &SynthesisConfig::from_env())
                .unwrap_or_else(|e| panic!("seed {seed} at {w} workers: {e}"));
            let modes = schedule.modes.as_ref().unwrap_or_else(|| {
                panic!("seed {seed}: admissible modal cluster got no per-mode schedules")
            });
            assert_eq!(modes.arms.len(), scenario.arms, "seed {seed}");
            schedule
                .validate_transitions(&scenario.graph)
                .unwrap_or_else(|e| {
                    panic!("seed {seed} at {w} workers: transition admission failed: {e}")
                });
            // Per-mode digests identify the dispatched arm: all distinct.
            let digests: Vec<u64> = (0..modes.arms.len() as u32)
                .map(|a| schedule.digest_mode(a))
                .collect();
            for i in 0..digests.len() {
                for j in i + 1..digests.len() {
                    assert_ne!(
                        digests[i], digests[j],
                        "seed {seed}: per-mode digests collide between arms {i} and {j}"
                    );
                }
            }
        }
    }
}

#[test]
fn rejected_programs_fall_back_to_selftimed_and_say_so() {
    // A write-divergent non-uniform cluster is NOT modal-admissible: the
    // merge order is data-dependent and synthesis must still reject it —
    // naming the members — and the caller must fall back to the self-timed
    // engine *and report the engine actually used* (the silent-fallback
    // bug this PR fixes; oil-bench now fails its smoke run on it).
    let mut graph = rtgraph::non_uniform_merge_demo();
    let n1 = graph.nodes.indices().nth(1).expect("demo has three nodes");
    graph.nodes[n1].writes[0].1 = 2;
    let plan = rtgraph::plan(&graph);
    let err = synthesize(&graph, &plan, 2, &SynthesisConfig::from_env())
        .expect_err("write-divergent clusters admit no per-mode schedules");
    match &err {
        ScheduleError::NonUniformCluster { members, .. } => {
            assert!(
                members.iter().any(|m| m == "n0") && members.iter().any(|m| m == "n1"),
                "the diagnosis must name the cluster members: {members:?}"
            );
        }
        other => panic!("expected NonUniformCluster, got {other}"),
    }
    let display = err.to_string();
    assert!(
        display.contains("n0") && display.contains("n1"),
        "Display must name the members for corpus triage: {display}"
    );

    // The call-site pattern bench and examples use: requested staticsched,
    // got selftimed — recorded, not swallowed.
    let requested = "staticsched";
    let engine_actual = match synthesize(&graph, &plan, 2, &SynthesisConfig::from_env()) {
        Ok(_) => requested,
        Err(_) => "selftimed",
    };
    assert_eq!(engine_actual, "selftimed");
    let report = execute_selftimed(
        &graph,
        &plan,
        &KernelLibrary::new(),
        picos(0.05),
        &SelfTimedConfig {
            threads: 2,
            warmup_samples: 4,
            ..SelfTimedConfig::default()
        },
    );
    assert!(!report.deadlocked, "the fallback engine must still run");
    assert_eq!(report.mode_switches, 0, "unscripted runs never switch");
    assert_ne!(
        engine_actual, requested,
        "this divergence is exactly what BENCH_runtime.json rows now record"
    );
}
