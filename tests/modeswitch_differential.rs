//! Differential verification of **per-mode quasi-static schedules with hot
//! mode switching** — the paper's SDR "user changes channels mid-stream"
//! scenario.
//!
//! `oil-compiler::schedule` admits a non-uniform modal cluster when its
//! token flow is mode-independent (union-advance: disjoint per-arm reads,
//! one shared write list) and synthesizes per-mode schedules whose
//! transitions are proven by exact integer replay across the switch seam
//! for every (mode, mode') pair. Clusters whose token flow is
//! **mode-dependent** (arms with differing write counts, overlapping
//! reads) get one repetition vector and firing order *per mode* plus a
//! verified drain/fill transition protocol; the dependent legs below hold
//! both engines to the same resolved mode plan, seam accounting included
//! (`mode_switches`, `transition_firings`). `oil-rt` then executes the same dispatch
//! in two unrelated ways — the static-order engine replays compiled firing
//! lists, the self-timed engine fires data-driven — and this harness holds
//! them to bit-identical value streams under adversarial mode scripts:
//! switches at the first and second firing, back-to-back, mid-period
//! (computed from the synthesised repetition count), mid-stream, and far
//! beyond the horizon, at 1/2/4 workers with fusion on and off.
//!
//! The simulator is value-free (it traces token origins, not payloads), so
//! its leg runs on the **collapsed twin**: the modal cluster replaced by
//! one union node with identical token flow ([`collapse_modal`]). The
//! collapsed trace must be bit-identical between the simulator and the
//! calendar engine — which, combined with the in-crate proof that the
//! modal schedule moves exactly the collapsed schedule's per-period token
//! flow, closes the three-engine oracle.
//!
//! Every failure message quotes the reproducing seed
//! (`ModalScenario::generate(seed)`).

use oil::compiler::rtgraph;
use oil::compiler::schedule::{
    collapse_modal, modal_admission, synthesize, synthesize_with, ModeScript, ScheduleError,
    StaticSchedule, SynthesisConfig,
};
use oil::gen::{ModalScenario, ModeDependentScenario};
use oil::rt::{
    execute, execute_selftimed, execute_selftimed_scripted, execute_staticsched_scripted,
    KernelLibrary, RtConfig, SelfTimedConfig, SelfTimedReport, StaticConfig, StaticReport,
};
use oil::sim::{build_simulation_from_graph, picos, SimulationConfig};

fn stress() -> bool {
    std::env::var_os("OIL_RT_STRESS").is_some()
}

fn modal_seeds() -> u64 {
    if stress() {
        48
    } else {
        24
    }
}

const WORKERS: [usize; 3] = [1, 2, 4];
const DURATION_S: f64 = 0.25;

/// The adversarial scripts plus one switching exactly mid-period, derived
/// from the synthesised schedule's own repetition count.
fn scripts_for(scenario: &ModalScenario, schedule: &StaticSchedule) -> Vec<ModeScript> {
    let mut scripts = scenario.adversarial_scripts();
    let modes = schedule.modes.as_ref().expect("modal schedule");
    let reps = schedule.units[modes.unit as usize].repetitions;
    let last = (scenario.arms - 1) as u32;
    if reps >= 2 {
        // Mid-period: the switch lands strictly inside a replayed period,
        // then switches back inside the next one.
        scripts.push(ModeScript::new(
            0,
            vec![(reps / 2, last), (reps + reps / 2, 0)],
        ));
    }
    scripts
}

fn scripted_static_run(
    graph: &rtgraph::RtGraph,
    schedule: &StaticSchedule,
    script: &ModeScript,
) -> StaticReport {
    execute_staticsched_scripted(
        graph,
        schedule,
        script,
        &KernelLibrary::new(),
        picos(DURATION_S),
        &StaticConfig {
            warmup_samples: 4,
            ..StaticConfig::default()
        },
    )
}

#[test]
fn scripted_static_replay_matches_scripted_selftimed_on_the_modal_corpus() {
    let mut reference_switches_total = 0u64;
    for seed in 0..modal_seeds() {
        let scenario = ModalScenario::generate(seed);
        let graph = &scenario.graph;
        let plan = rtgraph::plan(graph);
        let schedules: Vec<StaticSchedule> = WORKERS
            .iter()
            .map(|&w| {
                synthesize(graph, &plan, w, &SynthesisConfig::from_env()).unwrap_or_else(|e| {
                    panic!("seed {seed}: modal synthesis at {w} workers failed: {e}")
                })
            })
            .collect();
        for script in scripts_for(&scenario, &schedules[0]) {
            let reference = execute_selftimed_scripted(
                graph,
                &plan,
                &KernelLibrary::new(),
                picos(DURATION_S),
                &SelfTimedConfig {
                    threads: 1,
                    warmup_samples: 4,
                    ..SelfTimedConfig::default()
                },
                &script,
            );
            assert!(
                !reference.deadlocked,
                "seed {seed}: scripted self-timed reference deadlocked under {script:?}"
            );
            reference_switches_total += reference.mode_switches;

            let mut baseline: Option<StaticReport> = None;
            for (schedule, &w) in schedules.iter().zip(&WORKERS) {
                let report = scripted_static_run(graph, schedule, &script);
                // Prefix oracle on every buffer: the static replay covers at
                // least the self-timed sample budget, and both engines
                // dispatch the identical scripted arm per firing index.
                if let Some(d) = reference.values.prefix_divergence(&report.values) {
                    panic!(
                        "seed {seed}: scripted self-timed streams are not a prefix of \
                         the static replay at {w} worker(s) under {script:?}: {d}\n\
                         reproduce with ModalScenario::generate({seed})"
                    );
                }
                for (dy, st) in reference.sinks.iter().zip(&report.sinks) {
                    let shared = dy.values.len().min(st.values.len());
                    assert_eq!(
                        dy.values[..shared],
                        st.values[..shared],
                        "seed {seed}: sink `{}` diverges at {w} worker(s) under {script:?}",
                        dy.name
                    );
                }
                // The static replay runs to the end of its covering period,
                // so it can only observe *more* scripted switches, never
                // fewer or different ones.
                assert!(
                    report.mode_switches >= reference.mode_switches,
                    "seed {seed}: static replay lost mode switches at {w} worker(s) \
                     ({} < {}) under {script:?}",
                    report.mode_switches,
                    reference.mode_switches
                );
                match &baseline {
                    None => baseline = Some(report),
                    Some(base) => {
                        if let Some(d) = base.values.first_divergence(&report.values) {
                            panic!(
                                "seed {seed}: static replay differs between {} and {w} \
                                 worker(s) under {script:?}: {d}",
                                base.threads
                            );
                        }
                        assert_eq!(base.node_firings, report.node_firings, "seed {seed}");
                        assert_eq!(base.sources, report.sources, "seed {seed}");
                        assert_eq!(
                            base.mode_switches, report.mode_switches,
                            "seed {seed}: switch count depends on the worker count"
                        );
                        for (a, b) in base.sinks.iter().zip(&report.sinks) {
                            assert_eq!(a.consumed, b.consumed, "seed {seed}");
                            assert_eq!(a.values, b.values, "seed {seed}");
                        }
                    }
                }
            }
        }
    }
    assert!(
        reference_switches_total > 0,
        "no script ever switched inside the horizon — the differential would be vacuous"
    );
}

#[test]
fn fusion_on_and_off_replay_identical_modal_streams() {
    // Modal units are excluded from fusion, but the rest of the graph still
    // fuses; switching mid-stream must not observe the difference.
    for seed in 0..8 {
        let scenario = ModalScenario::generate(seed);
        let graph = &scenario.graph;
        let plan = rtgraph::plan(graph);
        for &w in &WORKERS {
            let fused = synthesize_with(graph, &plan, w, true)
                .unwrap_or_else(|e| panic!("seed {seed}: fused modal synthesis: {e}"));
            let plain = synthesize_with(graph, &plan, w, false)
                .unwrap_or_else(|e| panic!("seed {seed}: unfused modal synthesis: {e}"));
            assert_eq!(fused.period, plain.period, "seed {seed}");
            for script in scripts_for(&scenario, &fused).into_iter().take(4) {
                let a = scripted_static_run(graph, &fused, &script);
                let b = scripted_static_run(graph, &plain, &script);
                if let Some(d) = a.values.first_divergence(&b.values) {
                    panic!(
                        "seed {seed}: fusion changed a modal value stream at {w} \
                         worker(s) under {script:?}: {d}"
                    );
                }
                assert_eq!(a.node_firings, b.node_firings, "seed {seed}");
                assert_eq!(a.mode_switches, b.mode_switches, "seed {seed}");
            }
        }
    }
}

#[test]
fn collapsed_twin_trace_matches_the_simulator() {
    // The simulator traces token origins, not values, so the modal graph
    // itself cannot be its oracle. Its twin with the cluster collapsed to
    // one union node has the *identical per-buffer token flow* (proven by
    // exact integer replay in `oil-compiler`'s unit tests) and is a plain
    // KPN graph: simulator and calendar engine must agree bit for bit.
    for seed in 0..8 {
        let scenario = ModalScenario::generate(seed);
        let plan = rtgraph::plan(&scenario.graph);
        let info = modal_admission(&scenario.graph, &plan)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
            .unwrap_or_else(|| panic!("seed {seed}: no modal cluster"));
        let collapsed = collapse_modal(&scenario.graph, &info);
        let mut net = build_simulation_from_graph(&collapsed);
        let (_, sim_trace) = net.run_traced(picos(0.05), &SimulationConfig::default());
        for threads in [1, 2] {
            let report = execute(
                &collapsed,
                &KernelLibrary::new(),
                picos(0.05),
                &RtConfig {
                    threads,
                    ..RtConfig::default()
                },
            );
            assert_eq!(
                report.trace.first_divergence(&sim_trace),
                None,
                "seed {seed}: collapsed-twin trace diverges from the simulator at \
                 {threads} thread(s)"
            );
        }
    }
}

#[test]
fn transitions_are_admitted_for_every_mode_pair() {
    for seed in 0..modal_seeds() {
        let scenario = ModalScenario::generate(seed);
        let plan = rtgraph::plan(&scenario.graph);
        for &w in &WORKERS {
            let schedule = synthesize(&scenario.graph, &plan, w, &SynthesisConfig::from_env())
                .unwrap_or_else(|e| panic!("seed {seed} at {w} workers: {e}"));
            let modes = schedule.modes.as_ref().unwrap_or_else(|| {
                panic!("seed {seed}: admissible modal cluster got no per-mode schedules")
            });
            assert_eq!(modes.arms.len(), scenario.arms, "seed {seed}");
            schedule
                .validate_transitions(&scenario.graph)
                .unwrap_or_else(|e| {
                    panic!("seed {seed} at {w} workers: transition admission failed: {e}")
                });
            // Per-mode digests identify the dispatched arm: all distinct.
            let digests: Vec<u64> = (0..modes.arms.len() as u32)
                .map(|a| schedule.digest_mode(a))
                .collect();
            for i in 0..digests.len() {
                for j in i + 1..digests.len() {
                    assert_ne!(
                        digests[i], digests[j],
                        "seed {seed}: per-mode digests collide between arms {i} and {j}"
                    );
                }
            }
        }
    }
}

#[test]
fn rejected_programs_fall_back_to_selftimed_and_say_so() {
    // Write-divergent clusters are mode-dependent admissible since this
    // PR; the shape that remains inadmissible is an arm *reading* a buffer
    // some arm writes — the merge order is then data-dependent and
    // synthesis must still reject it, naming the members, and the caller
    // must fall back to the self-timed engine *and report the engine
    // actually used* (oil-bench fails its smoke run on a silent fallback).
    let mut graph = rtgraph::non_uniform_merge_demo();
    let n1 = graph.nodes.indices().nth(1).expect("demo has three nodes");
    let t = graph.nodes[n1].writes[0].0;
    graph.nodes[n1].reads.push((t, 1));
    let plan = rtgraph::plan(&graph);
    let err = synthesize(&graph, &plan, 2, &SynthesisConfig::from_env())
        .expect_err("an arm reading a modal-written buffer admits no per-mode schedules");
    match &err {
        ScheduleError::NonUniformCluster { members, .. } => {
            assert!(
                members.iter().any(|m| m == "n0") && members.iter().any(|m| m == "n1"),
                "the diagnosis must name the cluster members: {members:?}"
            );
        }
        other => panic!("expected NonUniformCluster, got {other}"),
    }
    let display = err.to_string();
    assert!(
        display.contains("n0") && display.contains("n1"),
        "Display must name the members for corpus triage: {display}"
    );

    // The call-site pattern bench and examples use: requested staticsched,
    // got selftimed — recorded, not swallowed.
    let requested = "staticsched";
    let engine_actual = match synthesize(&graph, &plan, 2, &SynthesisConfig::from_env()) {
        Ok(_) => requested,
        Err(_) => "selftimed",
    };
    assert_eq!(engine_actual, "selftimed");
    let report = execute_selftimed(
        &graph,
        &plan,
        &KernelLibrary::new(),
        picos(0.05),
        &SelfTimedConfig {
            threads: 2,
            warmup_samples: 4,
            ..SelfTimedConfig::default()
        },
    );
    assert!(!report.deadlocked, "the fallback engine must still run");
    assert_eq!(report.mode_switches, 0, "unscripted runs never switch");
    assert_ne!(
        engine_actual, requested,
        "this divergence is exactly what BENCH_runtime.json rows now record"
    );
}

// ---------------------------------------------------------------------------
// Mode-dependent token flow: per-mode repetition vectors + drain/fill seams.
// ---------------------------------------------------------------------------

fn dependent_seeds() -> u64 {
    if stress() {
        32
    } else {
        16
    }
}

/// The family's adversarial scripts plus one script per ordered mode pair,
/// so every (from, to) seam is crossed mid-horizon by at least one run.
fn dependent_scripts(scenario: &ModeDependentScenario) -> Vec<ModeScript> {
    let mut scripts = scenario.adversarial_scripts();
    for from in 0..scenario.arms as u32 {
        for to in 0..scenario.arms as u32 {
            if from != to {
                scripts.push(ModeScript::new(from, vec![(7, to)]));
            }
        }
    }
    scripts
}

fn scripted_selftimed_run(
    graph: &rtgraph::RtGraph,
    plan: &rtgraph::RtPlan,
    script: &ModeScript,
) -> SelfTimedReport {
    execute_selftimed_scripted(
        graph,
        plan,
        &KernelLibrary::new(),
        picos(DURATION_S),
        &SelfTimedConfig {
            threads: 1,
            warmup_samples: 4,
            ..SelfTimedConfig::default()
        },
        script,
    )
}

#[test]
fn mode_dependent_static_replay_matches_scripted_selftimed() {
    // The tentpole differential: arms with differing write counts (the
    // shape PR 7 rejected) synthesize one schedule per mode plus verified
    // drain/fill transitions, and the static replay of that plan is
    // bit-identical to the data-driven scripted self-timed engine — at
    // 1/2/4 workers, fusion on and off, across every ordered mode pair.
    let mut seam_crossings = 0u64;
    for seed in 0..dependent_seeds() {
        let scenario = ModeDependentScenario::generate(seed);
        let graph = &scenario.graph;
        let plan = rtgraph::plan(graph);
        let schedules: Vec<(usize, bool, StaticSchedule)> = WORKERS
            .iter()
            .flat_map(|&w| [(w, true), (w, false)])
            .map(|(w, fusion)| {
                let s = synthesize_with(graph, &plan, w, fusion).unwrap_or_else(|e| {
                    panic!("seed {seed}: mode-dependent synthesis at {w} workers: {e}")
                });
                let modes = s.modes.as_ref().unwrap_or_else(|| {
                    panic!("seed {seed}: dependent cluster got no modal schedule")
                });
                assert!(
                    modes.dependent.is_some(),
                    "seed {seed}: divergent write counts must synthesize per-mode schedules"
                );
                s.validate_transitions(graph).unwrap_or_else(|e| {
                    panic!("seed {seed} at {w} workers: transition admission failed: {e}")
                });
                (w, fusion, s)
            })
            .collect();
        for script in dependent_scripts(&scenario) {
            let reference = scripted_selftimed_run(graph, &plan, &script);
            assert!(
                !reference.deadlocked,
                "seed {seed}: scripted self-timed reference deadlocked under {script:?}"
            );
            seam_crossings += reference.mode_switches;
            for (w, fusion, schedule) in &schedules {
                let report = scripted_static_run(graph, schedule, &script);
                if let Some(d) = reference.values.prefix_divergence(&report.values) {
                    panic!(
                        "seed {seed}: scripted self-timed streams are not a prefix of the \
                         mode-dependent static replay at {w} worker(s), fusion={fusion}, \
                         under {script:?}: {d}\n\
                         reproduce with ModeDependentScenario::generate({seed})"
                    );
                }
                for (dy, st) in reference.sinks.iter().zip(&report.sinks) {
                    let shared = dy.values.len().min(st.values.len());
                    assert_eq!(
                        dy.values[..shared],
                        st.values[..shared],
                        "seed {seed}: sink `{}` diverges at {w} worker(s), fusion={fusion}, \
                         under {script:?}",
                        dy.name
                    );
                }
                // Both engines walk the same resolved mode plan, so the
                // switch count and the seam accounting agree exactly.
                assert_eq!(
                    report.mode_switches, reference.mode_switches,
                    "seed {seed}: mode switches diverge at {w} worker(s) under {script:?}"
                );
                assert_eq!(
                    report.transition_firings, reference.transition_firings,
                    "seed {seed}: transition firings diverge at {w} worker(s) under {script:?}"
                );
                assert_eq!(report.node_firings, reference.node_firings, "seed {seed}");
                assert_eq!(report.sources, reference.sources, "seed {seed}");
            }
        }
    }
    assert!(
        seam_crossings > 0,
        "no script ever crossed a mode seam — the differential would be vacuous"
    );
}

#[test]
fn observed_seam_latency_stays_within_the_proven_bound() {
    // Closing the loop between the static proof and the runtime
    // measurement: synthesis proves a virtual-time bound on every
    // drain/fill seam (`seam_latency_max`, by exact replay of each mode
    // pair), and the tracer measures each seam's wall-clock span. The two
    // are not the same currency — the seam's firings pay wall-clock
    // scheduling and instrumentation overhead the virtual model does not
    // price, and the OS can preempt mid-span — so the closure is
    // order-of-magnitude, not cycle-exact: the *best of a few attempts*
    // (transient preemption dies under a min) must stay within the proven
    // bound plus a fixed overhead allowance, on runs that beat real time.
    // A stuck drain, a lost wake-up or a seam replaying the wrong mode
    // pair overshoots by milliseconds and still fails loudly.
    const SEAM_ATTEMPTS: usize = 3;
    // Per-seam wall overhead on top of the virtual-time bound: a handful
    // of unfused step-by-step firings each costing clock reads, event
    // records and (in debug builds) unoptimised kernel dispatch.
    const SEAM_OVERHEAD_NS: f64 = 250_000.0;
    let mut checked = 0u64;
    for seed in 0..dependent_seeds() {
        let scenario = ModeDependentScenario::generate(seed);
        let graph = &scenario.graph;
        let plan = rtgraph::plan(graph);
        for &workers in &[1usize, 2] {
            let schedule = synthesize(graph, &plan, workers, &SynthesisConfig::from_env())
                .unwrap_or_else(|e| panic!("seed {seed}: synthesis at {workers}: {e}"));
            let bound_ns = schedule
                .modes
                .as_ref()
                .and_then(|m| m.dependent.as_ref())
                .map(|d| d.seam_latency_max.to_f64() * 1e9)
                .unwrap_or_else(|| panic!("seed {seed}: no mode-dependent seam proof"));
            for script in dependent_scripts(&scenario) {
                let mut best: Option<u64> = None;
                for _ in 0..SEAM_ATTEMPTS {
                    let report = execute_staticsched_scripted(
                        graph,
                        &schedule,
                        &script,
                        &KernelLibrary::new(),
                        picos(DURATION_S),
                        &StaticConfig {
                            warmup_samples: 4,
                            trace: true,
                            ..StaticConfig::default()
                        },
                    );
                    let tr = report.trace_report.as_ref().expect("tracing was enabled");
                    let observed_ns = tr.seam_latency_observed_ns();
                    // Real-time guard: on an overloaded host the whole run
                    // can fall behind its virtual horizon, and a wall-clock
                    // span then says nothing about the virtual-time proof.
                    if report.wall.as_secs_f64() > DURATION_S || observed_ns == 0 {
                        continue;
                    }
                    best = Some(best.map_or(observed_ns, |b| b.min(observed_ns)));
                    if (observed_ns as f64) <= bound_ns + SEAM_OVERHEAD_NS {
                        break;
                    }
                }
                let Some(observed_ns) = best else {
                    continue;
                };
                checked += 1;
                assert!(
                    observed_ns as f64 <= bound_ns + SEAM_OVERHEAD_NS,
                    "seed {seed}: best-of-{SEAM_ATTEMPTS} observed seam span \
                     {observed_ns} ns exceeds the proven seam_latency_max \
                     {bound_ns:.0} ns + {SEAM_OVERHEAD_NS:.0} ns overhead \
                     allowance at {workers} worker(s) under {script:?}\n\
                     reproduce with ModeDependentScenario::generate({seed})"
                );
            }
        }
    }
    assert!(
        checked > 0,
        "no traced run ever crossed a seam faster than real time — the \
         seam-latency closure would be vacuous"
    );
}

#[test]
fn past_horizon_switches_are_no_ops_on_both_engines() {
    // `ModeScript::new(0, vec![(1_000_000, last)])` never reaches its
    // switch point inside the horizon: both engines must report
    // `mode_switches == 0` and stream bit-identical to the constant
    // initial-arm script — for union-advance *and* mode-dependent
    // clusters.
    let cases: Vec<(String, rtgraph::RtGraph, usize)> = (0..4)
        .flat_map(|seed| {
            let ua = ModalScenario::generate(seed);
            let dep = ModeDependentScenario::generate(seed);
            [
                (
                    format!("ModalScenario::generate({seed})"),
                    ua.graph,
                    ua.arms,
                ),
                (
                    format!("ModeDependentScenario::generate({seed})"),
                    dep.graph,
                    dep.arms,
                ),
            ]
        })
        .collect();
    for (label, graph, arms) in &cases {
        let plan = rtgraph::plan(graph);
        let last = (*arms - 1) as u32;
        let ghost = ModeScript::new(0, vec![(1_000_000, last)]);
        let constant = ModeScript::constant(0);

        let st_ghost = scripted_selftimed_run(graph, &plan, &ghost);
        let st_const = scripted_selftimed_run(graph, &plan, &constant);
        assert_eq!(st_ghost.mode_switches, 0, "{label}: self-timed switched");
        assert_eq!(st_ghost.transition_firings, 0, "{label}");
        assert_eq!(
            st_ghost.values.first_divergence(&st_const.values),
            None,
            "{label}: a past-horizon switch changed the self-timed streams"
        );
        assert_eq!(st_ghost.node_firings, st_const.node_firings, "{label}");

        let schedule = synthesize(graph, &plan, 2, &SynthesisConfig::from_env())
            .unwrap_or_else(|e| panic!("{label}: synthesis failed: {e}"));
        let sr_ghost = scripted_static_run(graph, &schedule, &ghost);
        let sr_const = scripted_static_run(graph, &schedule, &constant);
        assert_eq!(sr_ghost.mode_switches, 0, "{label}: static replay switched");
        assert_eq!(sr_ghost.transition_firings, 0, "{label}");
        assert_eq!(
            sr_ghost.values.first_divergence(&sr_const.values),
            None,
            "{label}: a past-horizon switch changed the static streams"
        );
        assert_eq!(sr_ghost.node_firings, sr_const.node_firings, "{label}");
    }
}
