//! Rate-conformance and schedule-invariance verification of the self-timed
//! free-running engine.
//!
//! The calendar engine (`oil-rt::exec`) is pinned to the simulator by
//! bit-identical origin-timestamp traces (`tests/runtime_differential.rs`).
//! The self-timed engine (`oil-rt::selftimed`) has no virtual clock to
//! compare, so its oracles are the *value plane* and the *rate plane*:
//!
//! 1. **Prefix oracle** — for every buffer the plan marks
//!    *schedule-invariant* (not downstream of a contested modal merge; on
//!    KPN-safe graphs that is every buffer), the per-buffer value stream is
//!    a pure function of the graph. The calendar reference stops at the
//!    virtual horizon mid-pipeline, the free run drains to quiescence, so
//!    the reference streams (buffers *and* sink sample streams) must be a
//!    bit-exact **prefix** of the free-running streams, at every thread
//!    count. (Streams downstream of a contested merge resolve by arrival
//!    order — the calendar's virtual arrival order is a timing artifact a
//!    clockless engine cannot and should not replay.)
//! 2. **Invariance oracle** — for *all* streams of *all* graphs (including
//!    serial-clustered modal programs, which are deterministically
//!    serialised), the streams, firing counts and sink streams must be
//!    bit-identical across thread counts and under injected scheduling
//!    perturbations.
//! 3. **Liveness** — CTA-sized buffers must reach quiescence with zero
//!    deadlocks at 1/2/4 threads.
//! 4. **Rate conformance** — measured steady-state sink throughput must
//!    reach a configurable fraction (`OIL_RT_CONFORMANCE`, see
//!    `oil::rt::measure::conformance_threshold`) of the CTA-predicted
//!    rate: the paper's temporal guarantee as an empirical property.
//!
//! Every failure message quotes the reproducing seed
//! (`ProgramScenario::generate(seed)`).

use oil::compiler::{compile, rtgraph, CompileError, CompilerOptions};
use oil::gen::ProgramScenario;
use oil::rt::{
    execute, execute_selftimed, measure, ConformanceVerdict, KernelLibrary, RtConfig,
    SelfTimedConfig, SelfTimedReport,
};
use oil::sim::picos;

/// Generated programs per sweep (stress widens it, as in the calendar
/// harness).
fn program_seeds() -> u64 {
    if stress() {
        300
    } else {
        200
    }
}

fn stress() -> bool {
    std::env::var_os("OIL_RT_STRESS").is_some()
}

/// Virtual horizon per program for the prefix/invariance sweep.
fn duration_s() -> f64 {
    if stress() {
        1.0
    } else {
        0.2
    }
}

/// Thread counts under test: 1, 2 and N (`OIL_RT_THREADS` or the machine).
fn thread_counts() -> Vec<usize> {
    let n = oil::rt::env_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let mut counts = vec![1, 2, n.max(1)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn compile_scenario(scenario: &ProgramScenario) -> Option<oil::compiler::CompiledProgram> {
    match compile(
        &scenario.source,
        &scenario.registry,
        &CompilerOptions::default(),
    ) {
        Ok(compiled) => Some(compiled),
        Err(CompileError::Temporal(_)) => None,
        Err(CompileError::Frontend(diags)) => panic!(
            "seed {}: generated program must be front-end valid, got {diags:?}\n{}",
            scenario.seed, scenario.source
        ),
    }
}

fn free_run(
    graph: &rtgraph::RtGraph,
    plan: &rtgraph::RtPlan,
    threads: usize,
    duration_seconds: f64,
    chaos: Option<u64>,
) -> SelfTimedReport {
    execute_selftimed(
        graph,
        plan,
        &KernelLibrary::new(),
        picos(duration_seconds),
        &SelfTimedConfig {
            threads,
            chaos,
            warmup_samples: 4,
            // OIL_RT_TRACE=1 (the CI traced leg) runs the corpus down the
            // instrumented paths.
            trace: oil::rt::env_trace(),
            ..SelfTimedConfig::default()
        },
    )
}

/// Assert that `base` and `other` observed bit-identical behaviour.
fn assert_invariant(seed: u64, base: &SelfTimedReport, other: &SelfTimedReport, what: &str) {
    if let Some(d) = base.values.first_divergence(&other.values) {
        panic!(
            "seed {seed}: value streams differ between {what}: {d}\n\
             reproduce with ProgramScenario::generate({seed})"
        );
    }
    assert_eq!(
        base.node_firings, other.node_firings,
        "seed {seed}: firing counts differ between {what}"
    );
    for (a, b) in base.sinks.iter().zip(&other.sinks) {
        assert_eq!(
            a.consumed, b.consumed,
            "seed {seed}: sink `{}` {what}",
            a.name
        );
        assert_eq!(a.values, b.values, "seed {seed}: sink `{}` {what}", a.name);
    }
    assert_eq!(
        base.sources, other.sources,
        "seed {seed}: source sample counts differ between {what}"
    );
}

/// Prefix-compare the schedule-invariant buffers of the calendar reference
/// against a free run; returns how many buffers were verified.
fn assert_invariant_prefix(
    seed: u64,
    threads: usize,
    plan: &rtgraph::RtPlan,
    reference: &oil::rt::ValueTrace,
    free: &oil::rt::ValueTrace,
) -> u64 {
    assert_eq!(reference.buffers.len(), free.buffers.len(), "seed {seed}");
    let mut verified = 0;
    for ((cal, run), &invariant) in reference
        .buffers
        .iter()
        .zip(&free.buffers)
        .zip(plan.invariant.iter())
    {
        if !invariant {
            continue;
        }
        if let Some(d) = cal.prefix_divergence(run) {
            panic!(
                "seed {seed}: schedule-invariant stream is not preserved at {threads} \
                 thread(s): {d}\nreproduce with ProgramScenario::generate({seed})"
            );
        }
        verified += 1;
    }
    verified
}

#[test]
fn free_running_streams_match_the_calendar_reference_on_the_corpus() {
    let threads = thread_counts();
    let (mut checked, mut rejected, mut kpn, mut clustered) = (0u32, 0u32, 0u32, 0u32);
    let (mut buffers_total, mut buffers_verified) = (0u64, 0u64);
    for seed in 0..program_seeds() {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            rejected += 1;
            continue;
        };
        checked += 1;
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        if plan.is_kpn_safe() {
            kpn += 1;
        } else {
            clustered += 1;
        }

        // The calendar reference: deterministic, trace-pinned to the
        // simulator. Accepted programs neither overflow nor miss there, so
        // its value streams are exactly the first L values of the
        // schedule-invariant streams.
        let reference = execute(
            &graph,
            &KernelLibrary::new(),
            picos(duration_s()),
            &RtConfig {
                threads: 1,
                warmup_ticks: u64::MAX, // miss accounting is not under test
                record_traces: true,
                record_values: true,
                trace: oil::rt::env_trace(),
                ..RtConfig::default()
            },
        );
        assert_eq!(
            reference.trace.total_overflows(),
            0,
            "seed {seed}: the prefix oracle requires an overflow-free reference"
        );

        let mut baseline: Option<SelfTimedReport> = None;
        for &t in &threads {
            let report = free_run(&graph, &plan, t, duration_s(), None);
            assert!(
                !report.deadlocked,
                "seed {seed}: self-timed execution deadlocked at {t} thread(s) under \
                 CTA-sized buffers\nsource:\n{}",
                scenario.source
            );
            buffers_verified +=
                assert_invariant_prefix(seed, t, &plan, &reference.values, &report.values);
            buffers_total += graph.buffers.len() as u64;
            for ((cal, free), sink) in reference
                .sinks
                .iter()
                .zip(&report.sinks)
                .zip(graph.sinks.iter())
            {
                if !plan.invariant[sink.input] {
                    continue;
                }
                assert!(
                    free.consumed >= cal.consumed,
                    "seed {seed}: sink `{}` consumed less free-running ({} < {}) at \
                     {t} thread(s)",
                    cal.name,
                    free.consumed,
                    cal.consumed
                );
                let shared = cal.values.len().min(free.values.len());
                assert_eq!(
                    cal.values[..shared],
                    free.values[..shared],
                    "seed {seed}: sink `{}` sample stream diverges at {t} thread(s)",
                    cal.name
                );
            }
            match &baseline {
                None => baseline = Some(report),
                Some(base) => {
                    assert_invariant(
                        seed,
                        base,
                        &report,
                        &format!("{} and {t} threads", base.threads),
                    );
                }
            }
        }
    }
    assert!(
        checked >= program_seeds() as u32 * 3 / 4,
        "most generated programs must compile and be checked \
         ({checked} checked, {rejected} rejected)"
    );
    assert!(
        kpn >= checked / 10,
        "the full-graph prefix oracle must cover a meaningful slice of the corpus \
         ({kpn} KPN vs {clustered} clustered)"
    );
    assert!(
        clustered > 0,
        "the corpus must exercise the serial-cluster path (modal programs)"
    );
    // Roughly a third of all buffer streams sit upstream of (or beside)
    // every modal merge and are pinned cross-engine; the remainder are
    // pinned by the thread-count invariance oracle above. Guard the
    // cross-engine share against silent erosion.
    assert!(
        buffers_verified * 4 >= buffers_total,
        "the cross-engine prefix oracle must pin at least a quarter of all buffer \
         streams ({buffers_verified} of {buffers_total})"
    );
}

#[test]
fn injected_perturbations_do_not_change_the_streams() {
    // KPN determinism under adversarial scheduling: random yields and
    // sleeps inside the workers must not move a single bit in any stream.
    let threads = *thread_counts().last().unwrap();
    for seed in 0..16u64 {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        let calm = free_run(&graph, &plan, threads, 0.05, None);
        for chaos_seed in [1u64, 0xDEAD_BEEF] {
            let stormy = free_run(&graph, &plan, threads, 0.05, Some(chaos_seed));
            assert!(!stormy.deadlocked, "seed {seed}");
            assert_invariant(
                seed,
                &calm,
                &stormy,
                &format!("calm and chaos({chaos_seed:#x}) runs"),
            );
        }
    }
}

#[test]
fn measured_sink_throughput_meets_the_cta_rate_conformance_threshold() {
    // The paper's temporal guarantee, empirically: free-running execution
    // on real hardware sustains at least `threshold ×` the CTA-predicted
    // sink rate. Generated sink rates are a few kHz at most; a free run
    // that cannot beat that fraction on any modern machine is a scheduling
    // regression, not a slow kernel.
    let threshold = measure::conformance_threshold();
    let threads = *thread_counts().last().unwrap();
    let mut measured = 0u32;
    for seed in 0..24u64 {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        // A longer horizon than the prefix sweep: throughput needs a
        // steady-state window, and free-running execution pays wall time
        // only per token, not per virtual second. This is a *wall-clock*
        // oracle: a loaded or preempted CI host can depress one
        // measurement, so a violation is only a failure if it reproduces —
        // a real scheduling regression violates every attempt.
        let mut last_violations = Vec::new();
        let mut conformed = false;
        let mut measurable = false;
        for _attempt in 0..3 {
            let report = free_run(&graph, &plan, threads, 2.0, None);
            assert!(!report.deadlocked, "seed {seed}");
            let conformance = report.conformance(threshold);
            measurable |= conformance
                .sinks
                .iter()
                .any(|s| s.conformance_ratio().is_some());
            if conformance.verdict() != ConformanceVerdict::Fail {
                conformed = true;
                break;
            }
            last_violations = conformance.violations();
        }
        if measurable {
            measured += 1;
        }
        assert!(
            conformed,
            "seed {seed}: rate conformance violated in 3 consecutive measurements:\n  {}\n\
             source:\n{}",
            last_violations.join("\n  "),
            scenario.source
        );
    }
    assert!(
        measured >= 12,
        "too few scenarios produced a measurable steady-state window ({measured})"
    );
}

#[test]
fn pal_decoder_free_run_conforms_to_the_predicted_rates() {
    // The case study with real DSP kernels: the PAL graph is a pure KPN,
    // the repetition-vector pass batches the 6.4 MS/s RF front end, the
    // calendar streams are a prefix of the free-running streams, and the
    // display/speaker sinks sustain the CTA-predicted rates scaled by the
    // conformance threshold.
    let (compiled, _) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);
    assert!(plan.is_kpn_safe(), "the PAL decoder lowers to a pure KPN");
    assert!(
        plan.batch.iter().any(|&b| b > 1) || plan.source_batch.iter().any(|&b| b > 1),
        "the multi-rate PAL graph must get non-trivial batches: {:?}",
        plan.batch
    );

    let duration = picos(2e-3); // 12 800 RF samples, 8 000 display samples
                                // The free runs get a longer horizon: the 32 kHz speakers sink needs
                                // to clear its 256-sample warmup (64 samples at 2 ms would leave the
                                // conformance verdict *inconclusive* forever — the vacuous pass
                                // ConformanceVerdict was introduced to expose). 12 ms gives it 384
                                // samples: warm at 257, a >= 127-sample steady window. The calendar
                                // reference stays short — the prefix oracle only needs a prefix.
    let free_duration = picos(12e-3);
    let reference = execute(
        &graph,
        &KernelLibrary::pal(),
        duration,
        &RtConfig {
            threads: 1,
            warmup_ticks: 64,
            record_traces: true,
            record_values: true,
            trace: oil::rt::env_trace(),
            ..RtConfig::default()
        },
    );
    assert_eq!(
        reference.trace.total_overflows(),
        0,
        "calendar PAL baseline"
    );

    for t in thread_counts() {
        let report = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::pal(),
            free_duration,
            &SelfTimedConfig {
                threads: t,
                warmup_samples: 256,
                ..SelfTimedConfig::default()
            },
        );
        assert!(!report.deadlocked, "threads={t}");
        if let Some(d) = reference.values.prefix_divergence(&report.values) {
            panic!("PAL value streams diverge at {t} thread(s): {d}");
        }
        // Real recovered audio reaches the speakers.
        let speakers = report.sink_values("speakers").expect("speaker stream");
        assert!(speakers.len() > 32, "collected {} samples", speakers.len());
        assert!(speakers.iter().any(|v| v.abs() > 1e-6));
        // Rate conformance with the real kernels. The default threshold is
        // calibrated for the corpus's kHz-rate scenarios; the display sink
        // here is predicted at 4 MS/s and its wall rate is bound by real
        // FIR/resampler arithmetic, so the un-overridden floor is 2% in
        // release (an ~80 kS/s sustained display path even on one shared-CI
        // core) and 0.5% in debug (unoptimised kernels measure the build
        // profile, not the engine). Set OIL_RT_CONFORMANCE to enforce more
        // on real hardware.
        let threshold = if std::env::var_os("OIL_RT_CONFORMANCE").is_some() {
            measure::conformance_threshold()
        } else if cfg!(debug_assertions) {
            0.005
        } else {
            0.02
        };
        // Wall-clock oracle, so a preempted host gets re-measured: only a
        // violation in three consecutive runs is a regression.
        let mut conformance = report.conformance(threshold);
        for _retry in 0..2 {
            if conformance.verdict() == ConformanceVerdict::Pass {
                break;
            }
            let again = execute_selftimed(
                &graph,
                &plan,
                &KernelLibrary::pal(),
                free_duration,
                &SelfTimedConfig {
                    threads: t,
                    warmup_samples: 256,
                    ..SelfTimedConfig::default()
                },
            );
            conformance = again.conformance(threshold);
        }
        assert!(
            conformance.verdict() == ConformanceVerdict::Pass,
            "PAL rate conformance {} at {t} thread(s) in 3 consecutive \
             measurements:\n  {}",
            conformance.verdict(),
            conformance
                .violations()
                .into_iter()
                .chain(conformance.inconclusive_sinks())
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }
}
