//! Trace-equivalence differential verification of the parallel runtime
//! against the discrete-event simulator.
//!
//! The paper's parallelization claim — OIL's restrictions make every
//! accepted program *safely* parallelizable — is checked here as a
//! machine-verified property: for hundreds of seeded random programs
//! (`oil_gen::ProgramScenario`) and for the PAL decoder case study, the
//! work-stealing multi-threaded runtime (`oil-rt`) must produce
//! **bit-identical** per-buffer token traces, deadline-miss counts and
//! overflow counts as the simulator (`oil-sim`), at thread counts 1, 2 and
//! N (the machine's parallelism, or `OIL_RT_THREADS` when set). Both
//! engines execute the *same* `oil_compiler::rtgraph` lowering, so any
//! divergence is a scheduling-semantics bug, not a graph-construction
//! artifact.
//!
//! On top of live equivalence, a fixed-seed corpus
//! (`tests/data/runtime_corpus.txt`: `seed digest` lines) pins the expected
//! trace digest per seed, so a behavioural regression fails with the exact
//! reproducing seed even if both engines drift together. Regenerate after
//! an intentional semantic change with
//! `OIL_UPDATE_RUNTIME_CORPUS=1 cargo test --test runtime_differential corpus`.
//!
//! Every failure message quotes the reproducing seed; re-create the program
//! with `ProgramScenario::generate(seed)`.

use oil::compiler::{compile, rtgraph, CompileError, CompilerOptions};
use oil::gen::ProgramScenario;
use oil::rt::{execute, KernelLibrary, RtConfig};
use oil::sim::{build_simulation_from_graph, picos, ExecutionTrace, SimulationConfig};

/// Generated programs per sweep (the acceptance bar is ≥ 200; the stress
/// run widens the sweep).
fn program_seeds() -> u64 {
    if stress() {
        300
    } else {
        200
    }
}

/// Virtual time simulated per program, in seconds. Generated rates are
/// ≥ 25 Hz, so 0.2 s reaches a steady state for every stage; the stress run
/// (`OIL_RT_STRESS=1`, CI's release job) extends the horizon 5×.
fn duration_s() -> f64 {
    if stress() {
        1.0
    } else {
        0.2
    }
}

fn stress() -> bool {
    std::env::var_os("OIL_RT_STRESS").is_some()
}

/// The thread counts under test: 1 (serial), 2 (minimal parallelism) and N
/// (the machine's available parallelism or the `OIL_RT_THREADS` override).
fn thread_counts() -> Vec<usize> {
    let n = oil::rt::env_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let mut counts = vec![1, 2, n.max(1)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Warm-up ticks covering the pipeline fill of a generated scenario (same
/// policy as `tests/differential.rs`).
fn warmup_ticks(scenario: &ProgramScenario) -> u64 {
    let slowest_hz = scenario
        .stages
        .iter()
        .map(|s| s.firing_hz)
        .chain([scenario.source_hz])
        .min()
        .unwrap_or(1);
    4 + scenario.sink_hz.div_ceil(slowest_hz) * 6
}

/// Compile a generated scenario, returning `None` on (legitimate) temporal
/// rejection and panicking on front-end rejection.
fn compile_scenario(scenario: &ProgramScenario) -> Option<oil::compiler::CompiledProgram> {
    match compile(
        &scenario.source,
        &scenario.registry,
        &CompilerOptions::default(),
    ) {
        Ok(compiled) => Some(compiled),
        Err(CompileError::Temporal(_)) => None,
        Err(CompileError::Frontend(diags)) => panic!(
            "seed {}: generated program must be front-end valid, got {diags:?}\n{}",
            scenario.seed, scenario.source
        ),
    }
}

/// The simulator's trace for a scenario (the oracle side).
fn simulator_trace(
    compiled: &oil::compiler::CompiledProgram,
    warmup: u64,
    duration_seconds: f64,
) -> (ExecutionTrace, rtgraph::RtGraph) {
    let graph = rtgraph::lower(compiled);
    let mut net = build_simulation_from_graph(&graph);
    let (_, trace) = net.run_traced(
        picos(duration_seconds),
        &SimulationConfig {
            cores: 0,
            warmup_ticks: warmup,
        },
    );
    (trace, graph)
}

#[test]
fn runtime_traces_match_the_simulator_on_generated_programs() {
    let threads = thread_counts();
    let (mut checked, mut rejected) = (0u32, 0u32);
    for seed in 0..program_seeds() {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            rejected += 1;
            continue;
        };
        checked += 1;
        let warmup = warmup_ticks(&scenario);
        let (sim_trace, graph) = simulator_trace(&compiled, warmup, duration_s());

        for &t in &threads {
            let report = execute(
                &graph,
                &KernelLibrary::new(),
                picos(duration_s()),
                &RtConfig {
                    threads: t,
                    warmup_ticks: warmup,
                    record_traces: true,
                    record_values: true,
                    trace: oil::rt::env_trace(),
                    ..RtConfig::default()
                },
            );
            if let Some(divergence) = report.trace.first_divergence(&sim_trace) {
                panic!(
                    "seed {seed}: runtime trace at {t} thread(s) diverges from the simulator: \
                     {divergence}\nreproduce with ProgramScenario::generate({seed})\nsource:\n{}",
                    scenario.source
                );
            }
            // The paper's guarantee carries over to the parallel execution:
            // accepted ⇒ no misses, no overflows, at any thread count.
            assert!(
                report.meets_real_time_constraints(),
                "seed {seed}: accepted program missed deadlines or overflowed at {t} thread(s): \
                 {:?}\nsource:\n{}",
                report.trace,
                scenario.source
            );
            for (name, cap, occ) in &report.buffers {
                assert!(
                    occ <= cap,
                    "seed {seed}: buffer {name} exceeded its capacity at {t} thread(s)"
                );
            }
        }
    }
    assert!(
        checked >= program_seeds() as u32 * 3 / 4,
        "most generated programs must compile and be checked \
         ({checked} checked, {rejected} rejected)"
    );
}

#[test]
fn runtime_value_streams_are_thread_count_invariant() {
    // Beyond token traces: the actual f64 sample streams delivered to the
    // sinks must be identical at every thread count (kernel state travels
    // with the node, firings are totally ordered).
    let threads = thread_counts();
    for seed in 0..24 {
        let scenario = ProgramScenario::generate(seed);
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        let graph = rtgraph::lower(&compiled);
        let warmup = warmup_ticks(&scenario);
        let mut baseline: Option<oil::rt::RtReport> = None;
        for &t in &threads {
            let report = execute(
                &graph,
                &KernelLibrary::new(),
                picos(0.05),
                &RtConfig {
                    threads: t,
                    warmup_ticks: warmup,
                    record_traces: true,
                    record_values: true,
                    trace: oil::rt::env_trace(),
                    ..RtConfig::default()
                },
            );
            match &baseline {
                None => baseline = Some(report),
                Some(base) => {
                    assert_eq!(
                        base.sinks, report.sinks,
                        "seed {seed}: sink sample streams differ between {} and {} threads",
                        base.threads, report.threads
                    );
                    assert_eq!(base.trace, report.trace, "seed {seed}");
                    assert_eq!(base.node_firings, report.node_firings, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn pal_decoder_runtime_matches_simulator_with_zero_misses() {
    // The case study of paper Section VI, with the real DSP kernels: the
    // runtime must reproduce the simulator's trace bit for bit and meet
    // every real-time constraint at CTA-sized buffers.
    let (compiled, _) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let mut net = build_simulation_from_graph(&graph);
    let duration = picos(2e-3); // 12 800 RF samples, 8 000 display samples
    let config_warmup = 64;
    let (_, sim_trace) = net.run_traced(
        duration,
        &SimulationConfig {
            cores: 0,
            warmup_ticks: config_warmup,
        },
    );
    assert_eq!(sim_trace.total_misses(), 0, "simulator PAL baseline");
    assert_eq!(sim_trace.total_overflows(), 0, "simulator PAL baseline");

    for t in thread_counts() {
        let report = execute(
            &graph,
            &KernelLibrary::pal(),
            duration,
            &RtConfig {
                threads: t,
                warmup_ticks: config_warmup,
                record_traces: true,
                record_values: true,
                trace: oil::rt::env_trace(),
                ..RtConfig::default()
            },
        );
        if let Some(divergence) = report.trace.first_divergence(&sim_trace) {
            panic!("PAL decoder at {t} thread(s) diverges from the simulator: {divergence}");
        }
        assert_eq!(report.trace.total_misses(), 0, "threads={t}");
        assert_eq!(report.trace.total_overflows(), 0, "threads={t}");
        // The runtime executed real DSP kernels: the speaker stream carries
        // the recovered audio tone, not zeros.
        let speakers = report.sink_values("speakers").expect("speaker stream");
        assert!(speakers.len() > 32, "collected {} samples", speakers.len());
        assert!(speakers.iter().any(|v| v.abs() > 1e-6));
    }
}

// ---------------------------------------------------------------------------
// Fixed-seed digest corpus (regression pinning, `scenario_sweep` convention).
// ---------------------------------------------------------------------------

/// Seeds pinned in the corpus file (a prefix of the sweep's seed range).
const CORPUS_SEEDS: u64 = 48;
const CORPUS_PATH: &str = "tests/data/runtime_corpus.txt";

/// Compute the digest of a corpus seed's execution trace, or `None` when
/// the compiler (legitimately) rejects the scenario temporally.
fn corpus_digest(seed: u64) -> Option<u64> {
    let scenario = ProgramScenario::generate(seed);
    let compiled = compile_scenario(&scenario)?;
    let warmup = warmup_ticks(&scenario);
    // The corpus duration is fixed (independent of the stress horizon) so
    // pinned digests stay valid in every CI configuration.
    let (trace, _) = simulator_trace(&compiled, warmup, 0.2);
    Some(trace.digest())
}

#[test]
fn corpus_digests_pin_the_observable_behaviour() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(CORPUS_PATH);
    if std::env::var_os("OIL_UPDATE_RUNTIME_CORPUS").is_some() {
        let mut out = String::from(
            "# Fixed-seed trace-digest corpus: `<seed> <digest|rejected>` per line.\n\
             # Generated by OIL_UPDATE_RUNTIME_CORPUS=1 cargo test --test runtime_differential corpus\n",
        );
        for seed in 0..CORPUS_SEEDS {
            match corpus_digest(seed) {
                Some(d) => out.push_str(&format!("{seed} {d:016x}\n")),
                None => out.push_str(&format!("{seed} rejected\n")),
            }
        }
        std::fs::write(&path, out).expect("writing the corpus file");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let corpus = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("corpus file {} missing: {e}", path.display()));
    let mut pinned = 0u32;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (seed, expected) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("malformed corpus line `{line}`"));
        let seed: u64 = seed.parse().expect("corpus seed");
        let actual = corpus_digest(seed);
        let actual_str = actual.map_or("rejected".to_string(), |d| format!("{d:016x}"));
        assert_eq!(
            actual_str, expected,
            "seed {seed}: execution-trace digest changed — the observable behaviour of this \
             program regressed (or changed intentionally; then regenerate with \
             OIL_UPDATE_RUNTIME_CORPUS=1). Reproduce with ProgramScenario::generate({seed})."
        );
        pinned += 1;
    }
    assert!(pinned >= 32, "corpus too small: {pinned} pinned seeds");
}
