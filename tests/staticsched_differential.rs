//! Differential verification of the compiled static-order engine.
//!
//! The schedule synthesis pass (`oil_compiler::schedule`) claims that for
//! every accepted program the firing order can be decided at compile time;
//! the static-order engine (`oil_rt::staticsched`) claims that replaying
//! the synthesised lists — with zero runtime scheduling — produces exactly
//! the streams the dynamic engines produce. This harness holds both to it,
//! against the self-timed engine as the dynamic reference:
//!
//! 1. **Prefix oracle** — the static replay runs its sources to the end of
//!    the covering schedule iteration (`⌈budget/q⌉` iterations), at or past
//!    the self-timed engine's exact sample budget, so on every buffer the
//!    self-timed value stream must be a bit-exact **prefix** of the static
//!    replay's stream. Synthesis resolves uniform modal clusters exactly as
//!    the dynamic engines' deterministic tie-break does (lowest-id twin) and
//!    rejects only non-uniform clusters that are not modal-admissible
//!    (admissible ones get per-mode schedules, covered by
//!    `tests/modeswitch_differential.rs`), so this holds on *all* buffers,
//!    not only the plan's schedule-invariant subset.
//! 2. **Worker-count invariance** — schedules synthesised for 1/2/4
//!    workers replay bit-identical streams, firing counts and sink streams.
//! 3. **Liveness** — every synthesised schedule replays to completion
//!    under CTA-sized buffer bounds (validation proved one period; the
//!    runs prove the loop), with zero deadlocks on the full corpus —
//!    including the SDR-flavoured scenarios.
//! 4. **Schedule admission** — a property test independently replays one
//!    period of every synthesised schedule with exact integer token
//!    accounting: every unit fires exactly its repetition count, no read
//!    underflows, no CTA-sized capacity is exceeded, and the period is
//!    level-preserving. A fixed-seed golden corpus
//!    (`tests/data/schedule_corpus.txt`) pins the synthesised schedules'
//!    digests; regenerate after an intentional change with
//!    `OIL_UPDATE_SCHEDULE_CORPUS=1 cargo test --test staticsched_differential corpus`.
//! 5. **PAL rate conformance** — the case study replays with the real DSP
//!    kernels and must sustain the threshold fraction of the CTA-predicted
//!    sink rates.
//!
//! Every failure message quotes the reproducing seed
//! (`ProgramScenario::generate(seed)`, or `generate_sdr(seed)` for the SDR
//! slice).

use oil::compiler::schedule::{
    synthesize, synthesize_with, ScheduleError, StaticSchedule, SynthesisConfig, UnitKind,
};
use oil::compiler::{compile, rtgraph, CompileError, CompilerOptions};
use oil::gen::ProgramScenario;
use oil::rt::{
    execute_selftimed, execute_staticsched, measure, ConformanceVerdict, KernelLibrary,
    SelfTimedConfig, StaticConfig, StaticReport,
};
use oil::sim::picos;

/// Generated programs per sweep (stress widens it, as in the sibling
/// harnesses).
fn program_seeds() -> u64 {
    if stress() {
        300
    } else {
        200
    }
}

fn stress() -> bool {
    std::env::var_os("OIL_RT_STRESS").is_some()
}

fn duration_s() -> f64 {
    if stress() {
        1.0
    } else {
        0.2
    }
}

/// Worker counts under test.
const WORKERS: [usize; 3] = [1, 2, 4];

fn compile_scenario(scenario: &ProgramScenario) -> Option<oil::compiler::CompiledProgram> {
    match compile(
        &scenario.source,
        &scenario.registry,
        &CompilerOptions::default(),
    ) {
        Ok(compiled) => Some(compiled),
        Err(CompileError::Temporal(_)) => None,
        Err(CompileError::Frontend(diags)) => panic!(
            "seed {}: generated program must be front-end valid, got {diags:?}\n{}",
            scenario.seed, scenario.source
        ),
    }
}

fn static_run(
    graph: &rtgraph::RtGraph,
    schedule: &StaticSchedule,
    duration_seconds: f64,
) -> StaticReport {
    execute_staticsched(
        graph,
        schedule,
        &KernelLibrary::new(),
        picos(duration_seconds),
        &StaticConfig {
            warmup_samples: 4,
            // The CI traced-differential leg (OIL_RT_TRACE=1) drives the
            // whole suite down the instrumented paths; bit-identity with
            // the untraced run is its own oracle (trace_differential.rs).
            trace: oil::rt::env_trace(),
            ..StaticConfig::default()
        },
    )
}

/// The corpus plus the SDR slice, as (label, scenario) pairs.
fn corpus() -> impl Iterator<Item = (&'static str, ProgramScenario)> {
    (0..program_seeds())
        .map(|seed| ("generate", ProgramScenario::generate(seed)))
        .chain((0..32).map(|seed| ("generate_sdr", ProgramScenario::generate_sdr(seed))))
}

#[test]
fn static_replay_matches_the_selftimed_reference_on_the_corpus() {
    let (mut checked, mut rejected, mut unschedulable) = (0u32, 0u32, 0u32);
    for (label, scenario) in corpus() {
        let seed = scenario.seed;
        let Some(compiled) = compile_scenario(&scenario) else {
            rejected += 1;
            continue;
        };
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        let schedule = match synthesize(&graph, &plan, 2, &SynthesisConfig::from_env()) {
            Ok(s) => s,
            Err(ScheduleError::NonUniformCluster { .. }) => {
                // Legitimate fallback to the self-timed engine; the
                // compiler's modal extraction produces uniform twins, so
                // this must stay the exception.
                unschedulable += 1;
                continue;
            }
            Err(e) => panic!(
                "seed {seed} ({label}): schedule synthesis failed: {e}\nsource:\n{}",
                scenario.source
            ),
        };
        checked += 1;

        let reference = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(duration_s()),
            &SelfTimedConfig {
                threads: 1,
                warmup_samples: 4,
                ..SelfTimedConfig::default()
            },
        );
        assert!(
            !reference.deadlocked,
            "seed {seed} ({label}): self-timed reference deadlocked"
        );

        let mut baseline: Option<StaticReport> = None;
        for &w in &WORKERS {
            let schedule_w = if w == 2 {
                schedule.clone()
            } else {
                synthesize(&graph, &plan, w, &SynthesisConfig::from_env()).unwrap_or_else(|e| {
                    panic!("seed {seed} ({label}): synthesis at {w} workers: {e}")
                })
            };
            let report = static_run(&graph, &schedule_w, duration_s());
            // Prefix oracle on ALL buffers: the static replay covers at
            // least the self-timed sample budget and the quasi-static
            // cluster resolution matches the dynamic tie-break exactly.
            if let Some(d) = reference.values.prefix_divergence(&report.values) {
                panic!(
                    "seed {seed} ({label}): self-timed streams are not a prefix of the \
                     static replay at {w} worker(s): {d}\nreproduce with \
                     ProgramScenario::{label}({seed})\nsource:\n{}",
                    scenario.source
                );
            }
            for (cal, stat) in reference.sinks.iter().zip(&report.sinks) {
                let shared = cal.values.len().min(stat.values.len());
                assert_eq!(
                    cal.values[..shared],
                    stat.values[..shared],
                    "seed {seed} ({label}): sink `{}` diverges at {w} worker(s)",
                    cal.name
                );
            }
            match &baseline {
                None => baseline = Some(report),
                Some(base) => {
                    if let Some(d) = base.values.first_divergence(&report.values) {
                        panic!(
                            "seed {seed} ({label}): static replay differs between \
                             {} and {w} worker(s): {d}",
                            base.threads
                        );
                    }
                    assert_eq!(base.node_firings, report.node_firings, "seed {seed}");
                    assert_eq!(base.sources, report.sources, "seed {seed}");
                    for (a, b) in base.sinks.iter().zip(&report.sinks) {
                        assert_eq!(a.consumed, b.consumed, "seed {seed} ({label})");
                        assert_eq!(a.values, b.values, "seed {seed} ({label})");
                    }
                }
            }
        }
    }
    assert!(
        checked >= program_seeds() as u32 * 3 / 4,
        "most generated programs must be schedulable and checked \
         ({checked} checked, {rejected} rejected, {unschedulable} unschedulable)"
    );
    assert_eq!(
        unschedulable, 0,
        "compiler-lowered graphs only produce uniform clusters"
    );
}

#[test]
fn synthesized_schedules_satisfy_the_admission_property() {
    // Independent replay of the admission proof: one period fires every
    // unit exactly its repetition count, stays within [0, capacity] on
    // every ring-backed buffer, and is level-preserving. This re-derives
    // what `synthesize` validated, from the schedule's own data, so a bug
    // in the shared validation logic cannot hide itself.
    let mut checked = 0u32;
    for (label, scenario) in corpus() {
        let seed = scenario.seed;
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        for workers in [1, 3] {
            let Ok(s) = synthesize(&graph, &plan, workers, &SynthesisConfig::from_env()) else {
                continue;
            };
            checked += 1;
            // Re-validate through the public checker…
            s.validate(&graph)
                .unwrap_or_else(|e| panic!("seed {seed} ({label}): {e}"));
            // …and independently: exact integer replay of the period.
            let mut level: Vec<i64> = graph
                .buffers
                .iter()
                .map(|b| b.initial_tokens as i64)
                .collect();
            let mut fired = vec![0u64; s.units.len()];
            for step in &s.period {
                let unit = &s.units[step.unit as usize];
                for _ in 0..step.times {
                    fired[step.unit as usize] += 1;
                    type Ports = Vec<(usize, usize)>;
                    let (reads, writes): (Ports, Ports) = match &unit.kind {
                        UnitKind::Node(id)
                        | UnitKind::Cluster {
                            representative: id, ..
                        } => {
                            let n = &graph.nodes[*id];
                            (
                                n.reads.iter().map(|&(b, c)| (b.index(), c)).collect(),
                                n.writes.iter().map(|&(b, c)| (b.index(), c)).collect(),
                            )
                        }
                        UnitKind::Source(id) => (
                            Vec::new(),
                            graph.sources[*id]
                                .outputs
                                .iter()
                                .map(|&b| (b.index(), 1))
                                .collect(),
                        ),
                        UnitKind::Sink(id) => {
                            (vec![(graph.sinks[*id].input.index(), 1)], Vec::new())
                        }
                        UnitKind::Modal { members } => {
                            // Union-advance: every member's aggregated reads
                            // are consumed each firing; all members share one
                            // write list (members[0] is canonical).
                            let access = |m: oil::compiler::RtNodeId| {
                                oil::compiler::schedule::modal_member_access(&graph, m)
                            };
                            (
                                members
                                    .iter()
                                    .flat_map(|&m| access(m).0)
                                    .map(|(b, c)| (b.index(), c))
                                    .collect(),
                                access(members[0])
                                    .1
                                    .iter()
                                    .map(|&(b, c)| (b.index(), c))
                                    .collect(),
                            )
                        }
                    };
                    for (b, c) in reads {
                        level[b] -= c as i64;
                        assert!(
                            level[b] >= 0,
                            "seed {seed} ({label}): buffer underflow in period replay"
                        );
                    }
                    for (b, c) in writes {
                        let bid = oil::compiler::rtgraph::RtBufferId::new(b);
                        if s.consumer_unit[bid].is_none() {
                            continue;
                        }
                        level[b] += c as i64;
                        let cap = graph.buffers[bid]
                            .capacity
                            .max(graph.buffers[bid].initial_tokens)
                            .max(1) as i64;
                        assert!(
                            level[b] <= cap,
                            "seed {seed} ({label}): CTA capacity exceeded in period replay \
                             ({} > {cap})",
                            level[b]
                        );
                    }
                }
            }
            for (u, unit) in s.units.iter().enumerate() {
                assert_eq!(
                    fired[u], unit.repetitions,
                    "seed {seed} ({label}): unit {u} fired a non-repetition count"
                );
            }
            for (b, buf) in graph.buffers.iter().enumerate() {
                let bid = oil::compiler::rtgraph::RtBufferId::new(b);
                if s.consumer_unit[bid].is_some() {
                    assert_eq!(
                        level[b], buf.initial_tokens as i64,
                        "seed {seed} ({label}): period is not level-preserving on `{}`",
                        buf.name
                    );
                }
            }
        }
    }
    assert!(
        checked >= 100,
        "too few schedules property-checked ({checked})"
    );
}

use oil::dataflow::index::Idx;

// ---------------------------------------------------------------------------
// Fixed-seed golden schedule corpus.
// ---------------------------------------------------------------------------

const CORPUS_SEEDS: u64 = 48;
const CORPUS_PATH: &str = "tests/data/schedule_corpus.txt";

/// The schedule digest of a corpus seed at 1 and 2 workers, or `None` when
/// the compiler (legitimately) rejects the scenario.
fn corpus_digest(seed: u64) -> Option<(u64, u64)> {
    let scenario = ProgramScenario::generate(seed);
    let compiled = compile_scenario(&scenario)?;
    let graph = rtgraph::lower(&compiled);
    let plan = rtgraph::plan(&graph);
    // Fusion is forced ON so the pinned digests cover the fused worker
    // lists and stay stable under the CI leg that sets `OIL_RT_FUSION=0`.
    let d = |w: usize| {
        synthesize_with(&graph, &plan, w, true)
            .expect("schedulable")
            .digest()
    };
    Some((d(1), d(2)))
}

/// Modal corpus slice: per-mode digests of the generated modal scenarios
/// (`ModalScenario::generate(seed)`), pinned as `M<seed>` lines — whole
/// schedule at 1 and 2 workers, then one `m…` digest per arm at 2 workers.
const MODAL_CORPUS_SEEDS: u64 = 16;

fn modal_corpus_digests(seed: u64) -> Vec<String> {
    let scenario = oil::gen::ModalScenario::generate(seed);
    let plan = rtgraph::plan(&scenario.graph);
    let synth = |w: usize| {
        synthesize_with(&scenario.graph, &plan, w, true)
            .unwrap_or_else(|e| panic!("modal seed {seed} at {w} workers: {e}"))
    };
    let s1 = synth(1);
    let s2 = synth(2);
    let modes = s2
        .modes
        .as_ref()
        .unwrap_or_else(|| panic!("modal seed {seed}: synthesis produced no per-mode schedules"));
    let mut out = vec![
        format!("{:016x}", s1.digest()),
        format!("{:016x}", s2.digest()),
    ];
    for arm in 0..modes.arms.len() as u32 {
        out.push(format!("m{:016x}", s2.digest_mode(arm)));
    }
    out
}

/// Mode-dependent corpus slice: whole-schedule, per-mode and per-ordered-
/// pair transition digests of `ModeDependentScenario::generate(seed)`,
/// pinned as `D<seed>` lines — whole schedule at 1 and 2 workers, one
/// `m…` digest per mode at 2 workers, then one `t…` digest per ordered
/// mode pair (row-major, `from * modes + to`, diagonal skipped).
const DEPENDENT_CORPUS_SEEDS: u64 = 16;

fn dependent_corpus_digests(seed: u64) -> Vec<String> {
    let scenario = oil::gen::ModeDependentScenario::generate(seed);
    let plan = rtgraph::plan(&scenario.graph);
    let synth = |w: usize| {
        synthesize_with(&scenario.graph, &plan, w, true)
            .unwrap_or_else(|e| panic!("dependent seed {seed} at {w} workers: {e}"))
    };
    let s1 = synth(1);
    let s2 = synth(2);
    let modes = s2.modes.as_ref().unwrap_or_else(|| {
        panic!("dependent seed {seed}: synthesis produced no per-mode schedules")
    });
    assert!(
        modes.dependent.is_some(),
        "dependent seed {seed}: expected mode-dependent synthesis"
    );
    let n = modes.arms.len() as u32;
    let mut out = vec![
        format!("{:016x}", s1.digest()),
        format!("{:016x}", s2.digest()),
    ];
    for mode in 0..n {
        out.push(format!("m{:016x}", s2.digest_mode(mode)));
    }
    for from in 0..n {
        for to in 0..n {
            if from != to {
                out.push(format!("t{:016x}", s2.digest_transition(from, to)));
            }
        }
    }
    out
}

#[test]
fn corpus_digests_pin_the_synthesised_schedules() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(CORPUS_PATH);
    if std::env::var_os("OIL_UPDATE_SCHEDULE_CORPUS").is_some() {
        let mut out = String::from(
            "# Fixed-seed schedule-digest corpus: `<seed> <digest@1w> <digest@2w> | rejected` per line.\n\
             # Modal lines: `M<seed> <digest@1w> <digest@2w> m<arm0@2w> m<arm1@2w> …` (per-mode digests).\n\
             # Mode-dependent lines: `D<seed> <digest@1w> <digest@2w> m<mode…@2w> … t<from,to…@2w> …`\n\
             # (per-mode digests, then per-ordered-pair transition digests, row-major, diagonal skipped).\n\
             # Generated by OIL_UPDATE_SCHEDULE_CORPUS=1 cargo test --test staticsched_differential corpus\n",
        );
        for seed in 0..CORPUS_SEEDS {
            match corpus_digest(seed) {
                Some((d1, d2)) => out.push_str(&format!("{seed} {d1:016x} {d2:016x}\n")),
                None => out.push_str(&format!("{seed} rejected\n")),
            }
        }
        for seed in 0..MODAL_CORPUS_SEEDS {
            out.push_str(&format!(
                "M{seed} {}\n",
                modal_corpus_digests(seed).join(" ")
            ));
        }
        for seed in 0..DEPENDENT_CORPUS_SEEDS {
            out.push_str(&format!(
                "D{seed} {}\n",
                dependent_corpus_digests(seed).join(" ")
            ));
        }
        std::fs::write(&path, out).expect("writing the schedule corpus file");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let corpus = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("schedule corpus {} missing: {e}", path.display()));
    let mut pinned = 0u32;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("seed");
        let expected: Vec<&str> = parts.collect();
        let actual_strs = if let Some(dseed) = tag.strip_prefix('D') {
            let seed: u64 = dseed.parse().expect("dependent corpus seed");
            dependent_corpus_digests(seed)
        } else if let Some(mseed) = tag.strip_prefix('M') {
            let seed: u64 = mseed.parse().expect("modal corpus seed");
            modal_corpus_digests(seed)
        } else {
            let seed: u64 = tag.parse().expect("corpus seed");
            corpus_digest(seed).map_or(vec!["rejected".to_string()], |(d1, d2)| {
                vec![format!("{d1:016x}"), format!("{d2:016x}")]
            })
        };
        assert_eq!(
            actual_strs, expected,
            "seed {tag}: synthesised schedule changed — a synthesis regression (or an \
             intentional change; then regenerate with OIL_UPDATE_SCHEDULE_CORPUS=1). \
             Reproduce with ProgramScenario::generate / ModalScenario::generate."
        );
        pinned += 1;
    }
    assert!(
        pinned >= 32 + (MODAL_CORPUS_SEEDS + DEPENDENT_CORPUS_SEEDS) as u32,
        "schedule corpus too small: {pinned} pinned seeds"
    );
}

// ---------------------------------------------------------------------------
// Fusion differential: the fused execution form is an optimisation, never a
// semantic change.
// ---------------------------------------------------------------------------

/// A shorter slice of the corpus (the fusion differential runs two static
/// replays per worker count per scenario).
fn fusion_corpus() -> impl Iterator<Item = (&'static str, ProgramScenario)> {
    (0..64)
        .map(|seed| ("generate", ProgramScenario::generate(seed)))
        .chain((0..16).map(|seed| ("generate_sdr", ProgramScenario::generate_sdr(seed))))
}

#[test]
fn fusion_on_and_off_replay_bit_identical_streams() {
    let mut fused_runs_total = 0u64;
    for (label, scenario) in fusion_corpus() {
        let seed = scenario.seed;
        let Some(compiled) = compile_scenario(&scenario) else {
            continue;
        };
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        for &w in &WORKERS {
            let fused = match synthesize_with(&graph, &plan, w, true) {
                Ok(s) => s,
                Err(ScheduleError::NonUniformCluster { .. }) => continue,
                Err(e) => panic!("seed {seed} ({label}): fused synthesis at {w} workers: {e}"),
            };
            let plain = synthesize_with(&graph, &plan, w, false).unwrap_or_else(|e| {
                panic!("seed {seed} ({label}): unfused synthesis at {w} workers: {e}")
            });
            // Fusion rewrites the execution form only: the admitted period
            // and the per-worker projections are untouched.
            assert_eq!(fused.period, plain.period, "seed {seed} ({label})");
            assert_eq!(fused.workers, plain.workers, "seed {seed} ({label})");
            assert_eq!(plain.fusion.runs_fused, 0, "seed {seed} ({label})");
            fused_runs_total += fused.fusion.runs_fused as u64;

            let a = static_run(&graph, &fused, 0.1);
            let b = static_run(&graph, &plain, 0.1);
            if let Some(d) = a.values.first_divergence(&b.values) {
                panic!(
                    "seed {seed} ({label}): fusion changed a value stream at {w} \
                     worker(s): {d}\nreproduce with ProgramScenario::{label}({seed})\
                     \nsource:\n{}",
                    scenario.source
                );
            }
            assert_eq!(a.node_firings, b.node_firings, "seed {seed} ({label})");
            assert_eq!(a.sources, b.sources, "seed {seed} ({label})");
            assert_eq!(
                a.tokens, b.tokens,
                "seed {seed} ({label}): elided commits must still be counted"
            );
            for (fa, fb) in a.sinks.iter().zip(&b.sinks) {
                assert_eq!(fa.consumed, fb.consumed, "seed {seed} ({label})");
                assert_eq!(fa.values, fb.values, "seed {seed} ({label})");
            }
        }
    }
    assert!(
        fused_runs_total > 0,
        "the fusion pass never fired on the whole corpus — the differential \
         would be vacuous"
    );
}

// ---------------------------------------------------------------------------
// PAL case study.
// ---------------------------------------------------------------------------

#[test]
fn pal_fusion_collapses_the_pipelines_without_changing_a_bit() {
    let (compiled, _) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);
    let duration = picos(1e-3);
    for workers in WORKERS {
        let fused = synthesize_with(&graph, &plan, workers, true).expect("schedulable");
        let plain = synthesize_with(&graph, &plan, workers, false).expect("schedulable");
        assert_eq!(plain.fusion.runs_fused, 0);
        if workers == 1 {
            // One worker owns the whole decoder: both the audio and the
            // video pipeline must collapse into fused runs, and at least
            // one interior buffer must lose its ring traffic entirely.
            assert!(
                fused.fusion.runs_fused >= 2,
                "PAL@1w fusion stats: {:?}",
                fused.fusion
            );
            assert!(
                fused.fusion.fused_chain_len_max >= 3,
                "PAL@1w fusion stats: {:?}",
                fused.fusion
            );
            assert!(
                fused.fusion.rings_elided >= 1,
                "PAL@1w fusion stats: {:?}",
                fused.fusion
            );
        }
        let run = |s: &StaticSchedule| {
            execute_staticsched(
                &graph,
                s,
                &KernelLibrary::pal(),
                duration,
                &StaticConfig {
                    warmup_samples: 64,
                    ..StaticConfig::default()
                },
            )
        };
        let a = run(&fused);
        let b = run(&plain);
        assert_eq!(
            a.fusion, fused.fusion,
            "the report surfaces the schedule's fusion stats"
        );
        if let Some(d) = a.values.first_divergence(&b.values) {
            panic!("PAL fusion changed a value stream at {workers} worker(s): {d}");
        }
        assert_eq!(a.node_firings, b.node_firings, "workers={workers}");
        assert_eq!(a.sources, b.sources, "workers={workers}");
        assert_eq!(a.tokens, b.tokens, "workers={workers}");
        for (fa, fb) in a.sinks.iter().zip(&b.sinks) {
            assert_eq!(fa.consumed, fb.consumed, "workers={workers}");
            assert_eq!(fa.values, fb.values, "workers={workers}");
        }
    }
}

#[test]
fn pal_decoder_static_replay_conforms_to_the_predicted_rates() {
    let (compiled, _) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);

    let duration = picos(2e-3);
    // As in the self-timed PAL test: the static replays get a longer
    // horizon so the 32 kHz speakers sink clears its 256-sample warmup
    // and the conformance verdict can be a real Pass, never vacuously
    // inconclusive. The self-timed reference stays short — the prefix
    // oracle only needs a prefix.
    let replay_duration = picos(12e-3);
    let reference = execute_selftimed(
        &graph,
        &plan,
        &KernelLibrary::pal(),
        duration,
        &SelfTimedConfig {
            threads: 1,
            warmup_samples: 256,
            ..SelfTimedConfig::default()
        },
    );
    assert!(!reference.deadlocked, "self-timed PAL reference");

    for workers in WORKERS {
        let schedule = synthesize(&graph, &plan, workers, &SynthesisConfig::from_env())
            .expect("the PAL graph is schedulable");
        assert!(
            schedule.period_firings() > 0 && schedule.validate(&graph).is_ok(),
            "admitted PAL schedule re-validates"
        );
        if workers == 1 {
            assert!(
                schedule.cross_buffers.is_empty(),
                "a single worker needs no synchronisation"
            );
        }
        let report = execute_staticsched(
            &graph,
            &schedule,
            &KernelLibrary::pal(),
            replay_duration,
            &StaticConfig {
                warmup_samples: 256,
                ..StaticConfig::default()
            },
        );
        if let Some(d) = reference.values.prefix_divergence(&report.values) {
            panic!("PAL static replay diverges at {workers} worker(s): {d}");
        }
        let speakers = report.sink_values("speakers").expect("speaker stream");
        assert!(speakers.len() > 32, "collected {} samples", speakers.len());
        assert!(speakers.iter().any(|v| v.abs() > 1e-6));
        // Same wall-clock conformance discipline as the self-timed PAL
        // test: MS/s-rate sinks against real kernel arithmetic, re-measured
        // on violation because CI hosts get preempted.
        let threshold = if std::env::var_os("OIL_RT_CONFORMANCE").is_some() {
            measure::conformance_threshold()
        } else if cfg!(debug_assertions) {
            0.005
        } else {
            0.02
        };
        let mut conformance = report.conformance(threshold);
        for _retry in 0..2 {
            if conformance.verdict() == ConformanceVerdict::Pass {
                break;
            }
            let again = execute_staticsched(
                &graph,
                &schedule,
                &KernelLibrary::pal(),
                replay_duration,
                &StaticConfig {
                    warmup_samples: 256,
                    ..StaticConfig::default()
                },
            );
            conformance = again.conformance(threshold);
        }
        assert!(
            conformance.verdict() == ConformanceVerdict::Pass,
            "PAL rate conformance {} at {workers} worker(s) in 3 consecutive \
             measurements:\n  {}",
            conformance.verdict(),
            conformance
                .violations()
                .into_iter()
                .chain(conformance.inconclusive_sinks())
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }
}
