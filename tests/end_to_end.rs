//! Integration tests spanning the whole toolchain: front end → task graphs →
//! CTA derivation → buffer sizing → simulation.

use oil::compiler::{compile, CompileError, CompilerOptions};
use oil::lang::registry::{FunctionRegistry, FunctionSignature};
use oil::sim::{build_simulation, picos, SimulationConfig};

fn registry(response_time: f64) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for f in ["f", "g", "h", "k", "init", "src", "snk"] {
        reg.register(FunctionSignature::pure(f, response_time));
    }
    reg
}

#[test]
fn analysed_program_meets_constraints_in_simulation() {
    // If the CTA analysis accepts a program, executing it with the sized
    // buffers must not miss any deadline (the paper's core guarantee).
    let src = r#"
        mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
        mod seq Q(int m, out int b){ loop{ g(m, out b); } while(1); }
        mod par D(){
            fifo int mid;
            source int x = src() @ 4 kHz;
            sink int y = snk() @ 4 kHz;
            start x 2 ms before y;
            P(x, out mid) || Q(mid, out y)
        }
    "#;
    let compiled = compile(src, &registry(2e-5), &CompilerOptions::default()).unwrap();
    let mut net = build_simulation(&compiled);
    let metrics = net.run(picos(0.25), &SimulationConfig::default());
    assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
    // The measured latency stays within the declared 2 ms bound.
    assert!(metrics.sink_max_latency("y").unwrap() <= 2e-3 + 1e-9);
    // Buffer occupancies stay within the analysed capacities.
    for (name, cap, occ) in &metrics.buffers {
        assert!(occ <= cap, "buffer {name} exceeded its analysed capacity");
    }
}

#[test]
fn overloaded_program_is_rejected_by_analysis_and_fails_in_simulation() {
    // A task needing 0.5 ms per sample cannot keep up with a 4 kHz source.
    let src = r#"
        mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
        mod par D(){
            source int x = src() @ 4 kHz;
            sink int y = snk() @ 4 kHz;
            W(x, out y)
        }
    "#;
    let slow = registry(5e-4);
    let rejected = compile(src, &slow, &CompilerOptions::default());
    assert!(
        rejected.is_err(),
        "analysis must reject the overloaded program"
    );

    // The same program with fast tasks is accepted; artificially slowing the
    // simulation down (single shared core for comparison) is not needed —
    // simply check the accepted program simulates cleanly.
    let compiled = compile(src, &registry(2e-5), &CompilerOptions::default()).unwrap();
    let mut net = build_simulation(&compiled);
    let metrics = net.run(picos(0.25), &SimulationConfig::default());
    assert!(metrics.meets_real_time_constraints());
}

#[test]
fn functional_determinism_across_core_counts() {
    // Executing the same program with different processor counts changes the
    // schedule but not the delivered data volume (functional determinism of
    // OIL, Section IV): the sink consumes the same number of samples as long
    // as constraints are met.
    let src = r#"
        mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
        mod seq Q(int m, out int b){ loop{ g(m, out b); } while(1); }
        mod par D(){
            fifo int mid;
            source int x = src() @ 1 kHz;
            sink int y = snk() @ 1 kHz;
            P(x, out mid) || Q(mid, out y)
        }
    "#;
    let compiled = compile(src, &registry(1e-5), &CompilerOptions::default()).unwrap();
    let mut counts = Vec::new();
    for cores in [0usize, 2, 1] {
        let mut net = build_simulation(&compiled);
        let metrics = net.run(
            picos(0.5),
            &SimulationConfig {
                cores,
                warmup_ticks: 4,
            },
        );
        assert!(
            metrics.meets_real_time_constraints(),
            "cores={cores}: {metrics:?}"
        );
        counts.push(metrics.sinks[0].1);
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "sink consumed {counts:?}"
    );
}

#[test]
fn latency_constraint_violations_are_compile_errors() {
    let src = r#"
        mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
        mod par D(){
            source int x = src() @ 100 Hz;
            sink int y = snk() @ 100 Hz;
            start x 1 ms before y;
            W(x, out y)
        }
    "#;
    // 5 ms of work per sample can never satisfy a 1 ms end-to-end bound.
    let err = compile(src, &registry(5e-3), &CompilerOptions::default()).unwrap_err();
    assert!(matches!(err, CompileError::Temporal(_)));
}

#[test]
fn multi_rate_chain_rates_compose_multiplicatively() {
    // Two cascaded 1:4 downsamplers between a 16 kHz source and 1 kHz sink.
    let src = r#"
        mod seq D4(int a, out int b){ loop{ f(a:4, out b); } while(1); }
        mod par T(){
            fifo int mid;
            source int x = src() @ 16 kHz;
            sink int y = snk() @ 1 kHz;
            D4(x, out mid) || D4(mid, out y)
        }
    "#;
    let compiled = compile(src, &registry(1e-5), &CompilerOptions::default()).unwrap();
    // Exact rate equality: the 16 kHz -> 4 kHz -> 1 kHz cascade composes
    // multiplicatively with no round-off.
    assert_eq!(compiled.channel_rate("x"), Some(16_000.0));
    assert_eq!(compiled.channel_rate("mid"), Some(4_000.0));
    assert_eq!(compiled.channel_rate("y"), Some(1_000.0));
    let mut net = build_simulation(&compiled);
    let metrics = net.run(picos(0.5), &SimulationConfig::default());
    assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
}

#[test]
fn astronomically_large_rate_literals_are_rejected_not_panics() {
    // A ~1e45 Hz literal is a finite f64 but has no exact i128 rational;
    // the front end must reject it with a diagnostic instead of letting the
    // exact-rational conversion panic deep inside CTA derivation.
    let reg = registry(1e-5);
    let src = r#"
        mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
        mod par D(){
            source int x = src() @ 999999999999999999999999999999999999999999999.0 Hz;
            sink int y = snk() @ 1 kHz;
            W(x, out y)
        }
    "#;
    match compile(src, &reg, &CompilerOptions::default()) {
        Err(CompileError::Frontend(diags)) => {
            assert!(
                diags.iter().any(|d| d.message.contains("exact rational")),
                "{diags:?}"
            );
        }
        other => panic!("expected a front-end rejection, got {other:?}"),
    }

    // The same hole existed for latency amounts.
    let src_latency = r#"
        mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
        mod par D(){
            source int x = src() @ 1 kHz;
            sink int y = snk() @ 1 kHz;
            start x 999999999999999999999999999999999999999999999.0 ms before y;
            W(x, out y)
        }
    "#;
    assert!(
        matches!(
            compile(src_latency, &reg, &CompilerOptions::default()),
            Err(CompileError::Frontend(_))
        ),
        "latency amount must be rejected at the front end"
    );
}

#[test]
fn rejects_programs_that_escape_analysability() {
    let reg = registry(1e-5);
    // Recursion between modules.
    assert!(compile(
        "mod par A(int x, out int y){ B(x, out y) } mod par B(int x, out int y){ A(x, out y) }",
        &reg,
        &CompilerOptions::default()
    )
    .is_err());
    // Output stream never written.
    assert!(compile(
        "mod seq A(int a, out int b){ loop{ f(a); } while(1); }",
        &reg,
        &CompilerOptions::default()
    )
    .is_err());
    // Mismatched rate conversion between source and sink.
    assert!(compile(
        r#"mod seq W(int a, out int b){ loop{ f(a:2, out b); } while(1); }
           mod par T(){ source int x = src() @ 8 kHz; sink int y = snk() @ 8 kHz; W(x, out y) }"#,
        &reg,
        &CompilerOptions::default()
    )
    .is_err());
}
